//! Binary encoding of drained traces for the cross-rank gather.
//!
//! Each process serialises its [`ThreadTrace`]s into one opaque byte blob
//! (applying its clock offset so timestamps land on the coordinator's
//! timeline), ships the blob over a `gather` collective as `Vec<u8>`, and
//! rank 0 decodes all blobs into [`OwnedThreadTrace`]s for export. The format
//! is versioned and length-prefixed throughout; decode is fully bounds-checked
//! so a malformed blob yields an error, never a panic.

use crate::trace::{Phase, ThreadTrace};

const MAGIC: u32 = 0x5854_5243; // "XTRC"
const VERSION: u16 = 1;

/// One decoded event. `t_ns` is signed: clock alignment can push an event
/// slightly before the coordinator's anchor.
#[derive(Clone, Debug, PartialEq)]
pub struct OwnedEvent {
    pub name: String,
    pub phase: Phase,
    pub t_ns: i64,
    pub arg: u64,
}

/// A decoded per-thread trace, with owned names.
#[derive(Clone, Debug, PartialEq)]
pub struct OwnedThreadTrace {
    pub rank: Option<u32>,
    pub thread: String,
    pub dropped: u64,
    pub events: Vec<OwnedEvent>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    Truncated,
    BadMagic(u32),
    BadVersion(u16),
    BadPhase(u8),
    BadUtf8,
    BadNameIndex(u16),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "trace blob truncated"),
            DecodeError::BadMagic(m) => write!(f, "bad trace blob magic {m:#010x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace blob version {v}"),
            DecodeError::BadPhase(p) => write!(f, "invalid event phase {p}"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in trace blob"),
            DecodeError::BadNameIndex(i) => write!(f, "name index {i} out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
}

/// Serialise drained traces into one blob, shifting every timestamp by
/// `clock_offset_ns` onto the gathering rank's timeline.
pub fn encode_traces(traces: &[ThreadTrace], clock_offset_ns: i64) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, MAGIC);
    put_u16(&mut out, VERSION);
    put_u32(&mut out, traces.len() as u32);
    for t in traces {
        put_i64(&mut out, t.rank.map(i64::from).unwrap_or(-1));
        put_str(&mut out, &t.thread);
        put_u64(&mut out, t.dropped);
        // Per-thread string table: spans reuse a handful of static names, so
        // events store a u16 index instead of repeating the string.
        let mut names: Vec<&'static str> = Vec::new();
        for ev in &t.events {
            if !names.contains(&ev.name) {
                names.push(ev.name);
            }
        }
        put_u32(&mut out, names.len() as u32);
        for n in &names {
            put_str(&mut out, n);
        }
        put_u32(&mut out, t.events.len() as u32);
        for ev in &t.events {
            let idx = names.iter().position(|n| *n == ev.name).unwrap_or(0) as u16;
            put_u16(&mut out, idx);
            out.push(ev.phase as u8);
            put_i64(&mut out, (ev.t_ns as i64).saturating_add(clock_offset_ns));
            put_u64(&mut out, ev.arg);
        }
    }
    out
}

/// Decode one blob produced by [`encode_traces`]. An empty blob decodes to an
/// empty vec (ranks with nothing to contribute send zero bytes).
pub fn decode_traces(bytes: &[u8]) -> Result<Vec<OwnedThreadTrace>, DecodeError> {
    if bytes.is_empty() {
        return Ok(Vec::new());
    }
    let mut r = Reader { buf: bytes, pos: 0 };
    let magic = r.u32()?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let nthreads = r.u32()? as usize;
    let mut out = Vec::with_capacity(nthreads.min(1024));
    for _ in 0..nthreads {
        let rank = r.i64()?;
        let thread = r.str()?;
        let dropped = r.u64()?;
        let nnames = r.u32()? as usize;
        let mut names = Vec::with_capacity(nnames.min(4096));
        for _ in 0..nnames {
            names.push(r.str()?);
        }
        let nevents = r.u32()? as usize;
        let mut events = Vec::with_capacity(nevents.min(1 << 20));
        for _ in 0..nevents {
            let idx = r.u16()?;
            let name = names
                .get(idx as usize)
                .cloned()
                .ok_or(DecodeError::BadNameIndex(idx))?;
            let phase = r.u8()?;
            let phase = Phase::from_u8(phase).ok_or(DecodeError::BadPhase(phase))?;
            let t_ns = r.i64()?;
            let arg = r.u64()?;
            events.push(OwnedEvent {
                name,
                phase,
                t_ns,
                arg,
            });
        }
        out.push(OwnedThreadTrace {
            rank: u32::try_from(rank).ok(),
            thread,
            dropped,
            events,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn sample() -> Vec<ThreadTrace> {
        vec![
            ThreadTrace {
                rank: Some(2),
                thread: "xtrapulp-rank-2".into(),
                dropped: 1,
                events: vec![
                    TraceEvent {
                        name: "barrier",
                        phase: Phase::Begin,
                        t_ns: 100,
                        arg: 0,
                    },
                    TraceEvent {
                        name: "barrier",
                        phase: Phase::End,
                        t_ns: 250,
                        arg: 64,
                    },
                    TraceEvent {
                        name: "mark",
                        phase: Phase::Instant,
                        t_ns: 300,
                        arg: 7,
                    },
                ],
            },
            ThreadTrace {
                rank: None,
                thread: "serve-worker".into(),
                dropped: 0,
                events: vec![TraceEvent {
                    name: "publish",
                    phase: Phase::Begin,
                    t_ns: 10,
                    arg: 0,
                }],
            },
        ]
    }

    #[test]
    fn roundtrip_with_offset() {
        let blob = encode_traces(&sample(), -40);
        let decoded = decode_traces(&blob).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].rank, Some(2));
        assert_eq!(decoded[0].dropped, 1);
        assert_eq!(decoded[0].events.len(), 3);
        assert_eq!(decoded[0].events[0].name, "barrier");
        assert_eq!(decoded[0].events[0].t_ns, 60); // 100 - 40
        assert_eq!(decoded[0].events[1].arg, 64);
        assert_eq!(decoded[1].rank, None);
        assert_eq!(decoded[1].events[0].t_ns, -30); // offset can go negative
    }

    #[test]
    fn empty_blob_is_empty_trace() {
        assert_eq!(decode_traces(&[]).unwrap(), Vec::new());
    }

    #[test]
    fn malformed_blobs_error_not_panic() {
        let blob = encode_traces(&sample(), 0);
        assert_eq!(decode_traces(&blob[..3]), Err(DecodeError::Truncated));
        let mut bad = blob.clone();
        bad[0] ^= 0xff;
        assert!(matches!(decode_traces(&bad), Err(DecodeError::BadMagic(_))));
        let mut badver = blob.clone();
        badver[4] = 0xee;
        assert!(matches!(
            decode_traces(&badver),
            Err(DecodeError::BadVersion(_))
        ));
        // Truncate mid-events.
        assert_eq!(
            decode_traces(&blob[..blob.len() - 5]),
            Err(DecodeError::Truncated)
        );
    }
}
