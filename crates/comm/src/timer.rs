//! Lightweight wall-clock timers used by the experiment harnesses.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use serde::Serialize;

/// A simple stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Start a new timer.
    pub fn start() -> Self {
        Timer {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since the timer was started.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Elapsed time since the timer was started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Restart the timer and return the time elapsed up to now.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let lap = now - self.start;
        self.start = now;
        lap
    }
}

impl Default for Timer {
    fn default() -> Self {
        Timer::start()
    }
}

/// Accumulates named phase durations (initialisation, vertex balance, edge balance, ...).
///
/// The paper's discussion distinguishes where time is spent (e.g. the initialisation
/// stage depends on diameter, the balance stages on cut size); harnesses use this to
/// report per-phase breakdowns.
#[derive(Debug, Default, Clone, Serialize)]
pub struct PhaseTimer {
    phases: BTreeMap<String, Duration>,
}

impl PhaseTimer {
    /// Create an empty phase timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time `f` and add its duration to the named phase.
    pub fn time<R>(&mut self, phase: &str, f: impl FnOnce() -> R) -> R {
        let t = Instant::now();
        let out = f();
        self.add(phase, t.elapsed());
        out
    }

    /// Add a duration to the named phase.
    pub fn add(&mut self, phase: &str, d: Duration) {
        *self.phases.entry(phase.to_string()).or_default() += d;
    }

    /// Duration accumulated for one phase (zero if never recorded).
    pub fn get(&self, phase: &str) -> Duration {
        self.phases.get(phase).copied().unwrap_or_default()
    }

    /// Total duration across all phases.
    pub fn total(&self) -> Duration {
        self.phases.values().copied().sum()
    }

    /// Iterate over `(phase, duration)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.phases.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Fold another timer in, keeping the larger duration per phase. Aggregating
    /// per-rank timers this way yields the wall-clock view of a collective job
    /// (every phase ends at a barrier, so the slowest rank defines the phase).
    pub fn merge_max(&mut self, other: &PhaseTimer) {
        for (phase, d) in other.iter() {
            let entry = self.phases.entry(phase.to_string()).or_default();
            if d > *entry {
                *entry = d;
            }
        }
    }
}
