//! Length-checked little-endian wire encoding for the POD payloads the
//! collectives move.
//!
//! Two layers:
//!
//! * [`WireElem`] — a fixed-size element (`u32`/`u64`/`i64`/`f64`/... and small
//!   tuples of them) that knows how to append itself to a byte buffer and read
//!   itself back. Every buffer a collective ships (part updates `(u64, i32)`,
//!   arcs `(u64, u64)`, spmv folds `(u64, f64)`, ghost-value replies, reduce
//!   contributions) is a slice of `WireElem`s.
//! * [`WireMessage`] — a complete frame payload: either one scalar/tuple
//!   element (rooted collectives, `allgather`) or a `Vec` of elements
//!   (`allgatherv`, `alltoallv`, reduce contributions). Decoding validates the
//!   byte length against the element size, so a truncated or corrupt frame is a
//!   typed [`CodecError`] instead of a garbage value.
//!
//! Everything is little-endian on the wire regardless of host order. The
//! in-process backend never serialises (payloads move as typed boxes);
//! [`WireMessage::wire_size`] is what its byte accounting is estimated from,
//! so both backends report comparable volumes.

use std::fmt;

/// Why a frame payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A scalar/tuple message had the wrong byte length.
    BadLength {
        /// Bytes the type requires.
        expected: usize,
        /// Bytes the frame carried.
        got: usize,
    },
    /// A vector message's byte length is not a multiple of the element size —
    /// the frame was truncated or the peers disagree on the element type.
    Truncated {
        /// Fixed element size of the expected type.
        elem_size: usize,
        /// Bytes the frame carried.
        got: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadLength { expected, got } => {
                write!(
                    f,
                    "frame payload of {got} bytes, expected exactly {expected}"
                )
            }
            CodecError::Truncated { elem_size, got } => {
                write!(
                    f,
                    "frame payload of {got} bytes is not a multiple of the {elem_size}-byte element"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A fixed-size plain-old-data element with a defined little-endian layout.
///
/// Implemented for the integer/float scalars the algorithms exchange and for
/// 2- and 3-tuples of elements (covering the `(vertex, part)`, `(src, dst)`
/// and `(row, value)` records of the partitioner, graph and spmv layers).
pub trait WireElem: Copy + Send + 'static {
    /// Encoded size in bytes. Constant per type; frames are validated against it.
    const SIZE: usize;

    /// Append the little-endian encoding of `self` to `out`.
    fn put(&self, out: &mut Vec<u8>);

    /// Read one element starting at `bytes[at..]`. The caller has already
    /// validated that at least [`Self::SIZE`] bytes are available.
    fn get(bytes: &[u8], at: usize) -> Self;
}

macro_rules! scalar_wire_elem {
    ($($t:ty),*) => {$(
        impl WireElem for $t {
            const SIZE: usize = std::mem::size_of::<$t>();

            #[inline]
            fn put(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn get(bytes: &[u8], at: usize) -> Self {
                let mut buf = [0u8; std::mem::size_of::<$t>()];
                buf.copy_from_slice(&bytes[at..at + Self::SIZE]);
                <$t>::from_le_bytes(buf)
            }
        }
    )*};
}

scalar_wire_elem!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl<A: WireElem, B: WireElem> WireElem for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;

    #[inline]
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
    }

    #[inline]
    fn get(bytes: &[u8], at: usize) -> Self {
        (A::get(bytes, at), B::get(bytes, at + A::SIZE))
    }
}

impl<A: WireElem, B: WireElem, C: WireElem> WireElem for (A, B, C) {
    const SIZE: usize = A::SIZE + B::SIZE + C::SIZE;

    #[inline]
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
        self.2.put(out);
    }

    #[inline]
    fn get(bytes: &[u8], at: usize) -> Self {
        (
            A::get(bytes, at),
            B::get(bytes, at + A::SIZE),
            C::get(bytes, at + A::SIZE + B::SIZE),
        )
    }
}

/// A complete frame payload: encode to bytes, decode with length validation.
pub trait WireMessage: Send + 'static + Sized {
    /// Exact encoded payload size in bytes (excluding the transport's frame
    /// header). Also the in-process backend's byte-accounting estimate.
    fn wire_size(&self) -> usize;

    /// Append the encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Encode into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size());
        self.encode_into(&mut out);
        out
    }

    /// Decode a payload, validating the byte length.
    fn decode(bytes: &[u8]) -> Result<Self, CodecError>;
}

macro_rules! scalar_wire_message {
    ($($t:ty),*) => {$(
        impl WireMessage for $t {
            fn wire_size(&self) -> usize {
                <$t as WireElem>::SIZE
            }

            fn encode_into(&self, out: &mut Vec<u8>) {
                self.put(out);
            }

            fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
                if bytes.len() != <$t as WireElem>::SIZE {
                    return Err(CodecError::BadLength {
                        expected: <$t as WireElem>::SIZE,
                        got: bytes.len(),
                    });
                }
                Ok(<$t as WireElem>::get(bytes, 0))
            }
        }
    )*};
}

scalar_wire_message!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl<A: WireElem, B: WireElem> WireMessage for (A, B) {
    fn wire_size(&self) -> usize {
        Self::SIZE
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.put(out);
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() != Self::SIZE {
            return Err(CodecError::BadLength {
                expected: Self::SIZE,
                got: bytes.len(),
            });
        }
        Ok(Self::get(bytes, 0))
    }
}

impl<A: WireElem, B: WireElem, C: WireElem> WireMessage for (A, B, C) {
    fn wire_size(&self) -> usize {
        Self::SIZE
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.put(out);
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() != Self::SIZE {
            return Err(CodecError::BadLength {
                expected: Self::SIZE,
                got: bytes.len(),
            });
        }
        Ok(Self::get(bytes, 0))
    }
}

impl<E: WireElem> WireMessage for Vec<E> {
    fn wire_size(&self) -> usize {
        self.len() * E::SIZE
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.wire_size());
        for e in self {
            e.put(out);
        }
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        if E::SIZE == 0 || !bytes.len().is_multiple_of(E::SIZE) {
            return Err(CodecError::Truncated {
                elem_size: E::SIZE,
                got: bytes.len(),
            });
        }
        let n = bytes.len() / E::SIZE;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(E::get(bytes, i * E::SIZE));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<M: WireMessage + PartialEq + std::fmt::Debug + Clone>(msg: M) {
        let bytes = msg.encode();
        assert_eq!(bytes.len(), msg.wire_size());
        let back = M::decode(&bytes).expect("round trip decodes");
        assert_eq!(back, msg);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u8);
        round_trip(u16::MAX);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX - 7);
        round_trip(-1i32);
        round_trip(i64::MIN);
        round_trip(1.5f32);
        round_trip(-0.125f64);
    }

    #[test]
    fn tuples_round_trip() {
        round_trip((42u64, -3i32));
        round_trip((7u64, 9u64));
        round_trip((1u64, 0.5f64));
        round_trip((1u32, 2u64, -3i64));
    }

    #[test]
    fn vectors_round_trip_including_empty() {
        round_trip(Vec::<u64>::new());
        round_trip(Vec::<(u64, i32)>::new());
        round_trip(vec![1u64, 2, 3, u64::MAX]);
        round_trip(vec![(5u64, -1i32), (6, 7)]);
        round_trip(vec![(1u64, f64::MAX), (2, f64::MIN_POSITIVE)]);
        let big: Vec<u64> = (0..10_000).collect();
        round_trip(big);
    }

    #[test]
    fn truncated_vector_frames_are_rejected() {
        let mut bytes = vec![9u64, 10, 11].encode();
        bytes.pop();
        match Vec::<u64>::decode(&bytes) {
            Err(CodecError::Truncated { elem_size: 8, got }) => assert_eq!(got, 23),
            other => panic!("expected Truncated, got {other:?}"),
        }
        // A tuple vector cut mid-element is equally rejected.
        let mut bytes = vec![(1u64, 2i32)].encode();
        bytes.truncate(10);
        assert!(Vec::<(u64, i32)>::decode(&bytes).is_err());
    }

    #[test]
    fn scalar_frames_reject_wrong_lengths() {
        assert_eq!(
            u64::decode(&[0; 7]),
            Err(CodecError::BadLength {
                expected: 8,
                got: 7
            })
        );
        assert!(u32::decode(&[0; 8]).is_err());
        assert!(<(u64, i32)>::decode(&[0; 11]).is_err());
    }

    #[test]
    fn encoding_is_little_endian_and_stable() {
        assert_eq!(0x0102_0304u32.encode(), vec![0x04, 0x03, 0x02, 0x01]);
        assert_eq!((1u64, -1i32).encode().len(), 12);
    }
}
