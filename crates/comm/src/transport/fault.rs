//! Deterministic fault injection for exercising failure and recovery paths.
//!
//! [`FaultInjectTransport`] wraps any [`Transport`] and perturbs its
//! send/receive stream according to a seeded [`FaultPlan`]: kill the endpoint
//! at the N-th frame (as a sticky typed death, or as a hard `process::exit`
//! for multi-process drills), drop receives with a seeded probability
//! (surfacing as typed timeouts), or delay every k-th operation. Plans are
//! pure functions of `(seed, frame index)`, so a failing CI run replays
//! exactly.
//!
//! The wrapper deliberately does **not** forward [`Transport::barrier`] to the
//! inner backend: it inherits the trait's default central barrier over its own
//! `send`/`recv`, so injected faults perturb barriers too and a victim of an
//! injected kill can never strand live peers inside a native barrier primitive
//! that no timeout governs.
//!
//! [`FaultInjectTransport::recover`] clears the sticky injected death and
//! disarms the one-shot plan before recovering the inner transport — the
//! retry after a recovery runs clean, mirroring a respawned process that comes
//! back without its kill switch.

use std::cell::{Cell, RefCell};
use std::sync::OnceLock;
use std::time::Duration;

use xtrapulp_obs::registry::Counter;

use super::{Frame, Transport, TransportError};

fn injected_faults_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| xtrapulp_obs::registry::counter("transport_injected_faults_total"))
}

/// splitmix64: the per-frame decision stream of a plan.
fn mix(seed: u64, frame: u64) -> u64 {
    let mut x = seed.wrapping_add((frame.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded, deterministic schedule of injected faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    /// Kill the endpoint when the combined send+recv frame counter reaches
    /// this value.
    kill_at_frame: Option<u64>,
    /// `None`: the kill is a sticky typed [`TransportError::PeerDeath`].
    /// `Some(code)`: the kill is a hard `process::exit(code)` — the
    /// multi-process drill's way of dying exactly mid-collective.
    kill_exit_code: Option<i32>,
    /// Probability in [0, 1] that any given receive is dropped (surfacing as
    /// a typed zero-wait [`TransportError::Timeout`]).
    drop_recv_probability: f64,
    /// Sleep this long before every k-th operation.
    delay: Option<(u64, Duration)>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given jitter/drop decision seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            kill_at_frame: None,
            kill_exit_code: None,
            drop_recv_probability: 0.0,
            delay: None,
        }
    }

    /// Kill the endpoint (sticky typed death) once `frame` send/recv
    /// operations have completed.
    pub fn kill_at_frame(mut self, frame: u64) -> FaultPlan {
        self.kill_at_frame = Some(frame);
        self.kill_exit_code = None;
        self
    }

    /// Kill the whole process with `exit(code)` once `frame` send/recv
    /// operations have completed. For multi-process drills only.
    pub fn kill_process_at_frame(mut self, frame: u64, code: i32) -> FaultPlan {
        self.kill_at_frame = Some(frame);
        self.kill_exit_code = Some(code);
        self
    }

    /// Drop each receive with probability `p` (deterministically derived from
    /// the seed and the frame index), surfacing a typed timeout.
    pub fn drop_recv_probability(mut self, p: f64) -> FaultPlan {
        self.drop_recv_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Sleep `delay` before every `every`-th operation (1 = every operation).
    pub fn delay_every(mut self, every: u64, delay: Duration) -> FaultPlan {
        self.delay = Some((every.max(1), delay));
        self
    }

    fn should_drop(&self, frame: u64) -> bool {
        self.drop_recv_probability > 0.0
            && (mix(self.seed, frame) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
                < self.drop_recv_probability
    }
}

/// A [`Transport`] wrapper executing a [`FaultPlan`] against its traffic.
pub struct FaultInjectTransport {
    inner: Box<dyn Transport>,
    plan: RefCell<FaultPlan>,
    /// Combined send+recv operation counter driving the plan.
    frames: Cell<u64>,
    /// Sticky injected death; cleared by [`FaultInjectTransport::recover`].
    killed: RefCell<Option<TransportError>>,
}

impl FaultInjectTransport {
    /// Wrap `inner`, injecting faults per `plan`.
    pub fn new(inner: Box<dyn Transport>, plan: FaultPlan) -> FaultInjectTransport {
        FaultInjectTransport {
            inner,
            plan: RefCell::new(plan),
            frames: Cell::new(0),
            killed: RefCell::new(None),
        }
    }

    /// Send/recv operations observed so far.
    pub fn frames(&self) -> u64 {
        self.frames.get()
    }

    /// Whether the injected kill has fired (and not yet been recovered).
    pub fn is_killed(&self) -> bool {
        self.killed.borrow().is_some()
    }

    /// Apply the plan to the operation numbered by the current frame counter.
    /// Returns the injected error, if any fires.
    fn pre_op(&self, peer: usize, is_recv: bool) -> Result<(), TransportError> {
        if let Some(err) = self.killed.borrow().as_ref() {
            return Err(err.clone());
        }
        let frame = self.frames.get();
        self.frames.set(frame + 1);
        let plan = self.plan.borrow();
        if let Some((every, delay)) = plan.delay {
            if frame.is_multiple_of(every) {
                injected_faults_counter().inc();
                std::thread::sleep(delay);
            }
        }
        if let Some(kill_at) = plan.kill_at_frame {
            if frame >= kill_at {
                if let Some(code) = plan.kill_exit_code {
                    // The drill's deliberate mid-collective death: the OS
                    // closes our sockets, peers see the EOF cascade.
                    std::process::exit(code);
                }
                injected_faults_counter().inc();
                let err = TransportError::PeerDeath {
                    peer,
                    detail: format!("injected fault: endpoint killed at frame {kill_at}"),
                };
                *self.killed.borrow_mut() = Some(err.clone());
                return Err(err);
            }
        }
        if is_recv && plan.should_drop(frame) {
            injected_faults_counter().inc();
            return Err(TransportError::Timeout { peer, after_ms: 0 });
        }
        Ok(())
    }
}

impl Transport for FaultInjectTransport {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn nranks(&self) -> usize {
        self.inner.nranks()
    }

    fn is_wire(&self) -> bool {
        self.inner.is_wire()
    }

    fn backend(&self) -> &'static str {
        "fault-inject"
    }

    fn clock_offset_ns(&self) -> i64 {
        self.inner.clock_offset_ns()
    }

    fn send(&self, dst: usize, frame: Frame) -> Result<u64, TransportError> {
        self.pre_op(dst, false)?;
        self.inner.send(dst, frame)
    }

    fn recv(&self, src: usize) -> Result<Frame, TransportError> {
        self.pre_op(src, true)?;
        self.inner.recv(src)
    }

    fn recover(&self) -> Result<(), TransportError> {
        // A recovered endpoint comes back clean: clear the sticky death and
        // disarm the one-shot faults, exactly like a respawned process
        // relaunched without its kill switch.
        *self.killed.borrow_mut() = None;
        let mut plan = self.plan.borrow_mut();
        plan.kill_at_frame = None;
        plan.drop_recv_probability = 0.0;
        drop(plan);
        self.inner.recover()
    }

    // No `barrier` override: the trait's default central barrier runs over
    // this wrapper's own send/recv, so injected faults perturb barriers too
    // (and peers are never stranded in an inner barrier primitive with no
    // timeout).
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_decisions_are_deterministic_in_seed_and_frame() {
        let plan_a = FaultPlan::new(7).drop_recv_probability(0.3);
        let plan_b = FaultPlan::new(7).drop_recv_probability(0.3);
        let decisions_a: Vec<bool> = (0..256).map(|f| plan_a.should_drop(f)).collect();
        let decisions_b: Vec<bool> = (0..256).map(|f| plan_b.should_drop(f)).collect();
        assert_eq!(decisions_a, decisions_b);
        let dropped = decisions_a.iter().filter(|&&d| d).count();
        // ~30% of 256, loosely bounded.
        assert!((30..125).contains(&dropped), "dropped {dropped} of 256");
        // A different seed yields a different stream.
        let plan_c = FaultPlan::new(8).drop_recv_probability(0.3);
        assert_ne!(
            decisions_a,
            (0..256).map(|f| plan_c.should_drop(f)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_probability_never_drops() {
        let plan = FaultPlan::new(1);
        assert!((0..1024).all(|f| !plan.should_drop(f)));
    }
}
