//! Backend zero: the shared-memory hub refactored into a [`Transport`].
//!
//! Ranks are threads of one process. A fabric of per-ordered-pair unbounded
//! channels replaces the old slot/mailbox hub: frames move as typed boxes
//! (no serialisation), FIFO per pair, and the only shared synchronisation is
//! a [`std::sync::Barrier`] backing the explicit `barrier` collective. Unlike
//! the old hub — which framed every collective with two or three global
//! barriers to protect slot reuse — channels need no framing at all, so
//! in-process collectives now synchronise only with the ranks they actually
//! exchange frames with.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use super::{BarrierCost, Frame, Transport, TransportError};

/// Builder of a matched set of in-process transports, one per rank.
pub struct InProcFabric;

impl InProcFabric {
    /// Create `nranks` connected endpoints. Endpoint `r` is rank `r`; move
    /// each to its rank thread.
    ///
    /// # Panics
    ///
    /// Panics if `nranks == 0` (validated upstream by
    /// [`Runtime::try_new`](crate::Runtime::try_new)).
    pub fn create(nranks: usize) -> Vec<InProcTransport> {
        // Generous default: in-process peers only go silent when a sibling
        // rank has failed its job, and then the bound keeps the survivors
        // from hanging forever.
        Self::create_with_recv_timeout(nranks, Duration::from_secs(60))
    }

    /// Like [`InProcFabric::create`] with an explicit receive timeout, after
    /// which a silent peer surfaces as [`TransportError::Timeout`]. Fault
    /// injection tests lower it so injected failures resolve quickly.
    pub fn create_with_recv_timeout(nranks: usize, recv_timeout: Duration) -> Vec<InProcTransport> {
        assert!(nranks > 0, "a fabric needs at least one rank");
        let barrier = Arc::new(Barrier::new(nranks));
        // txs[s][d] / rxs[d][s]: the (s -> d) channel. Self-channels are
        // created for index regularity but never used.
        let mut txs: Vec<Vec<Option<Sender<Frame>>>> = (0..nranks)
            .map(|_| (0..nranks).map(|_| None).collect())
            .collect();
        let mut rxs: Vec<Vec<Option<Receiver<Frame>>>> = (0..nranks)
            .map(|_| (0..nranks).map(|_| None).collect())
            .collect();
        for s in 0..nranks {
            for d in 0..nranks {
                let (tx, rx) = channel();
                txs[s][d] = Some(tx);
                rxs[d][s] = Some(rx);
            }
        }
        txs.into_iter()
            .zip(rxs)
            .enumerate()
            .map(|(rank, (tx_row, rx_row))| InProcTransport {
                rank,
                nranks,
                recv_timeout,
                barrier: Arc::clone(&barrier),
                txs: tx_row.into_iter().map(Option::unwrap).collect(),
                rxs: rx_row.into_iter().map(Option::unwrap).collect(),
            })
            .collect()
    }
}

/// One rank's endpoint of the in-process fabric.
pub struct InProcTransport {
    rank: usize,
    nranks: usize,
    recv_timeout: Duration,
    barrier: Arc<Barrier>,
    /// `txs[d]` queues frames to rank `d`.
    txs: Vec<Sender<Frame>>,
    /// `rxs[s]` receives frames from rank `s`.
    rxs: Vec<Receiver<Frame>>,
}

impl Transport for InProcTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nranks(&self) -> usize {
        self.nranks
    }

    fn is_wire(&self) -> bool {
        false
    }

    fn backend(&self) -> &'static str {
        "inproc"
    }

    fn send(&self, dst: usize, frame: Frame) -> Result<u64, TransportError> {
        debug_assert_ne!(dst, self.rank, "self-sends are handled above the transport");
        let wire = frame.wire_len();
        self.txs[dst]
            .send(frame)
            .map_err(|_| TransportError::PeerDeath {
                peer: dst,
                detail: "in-process peer released its transport".to_string(),
            })?;
        Ok(wire)
    }

    fn recv(&self, src: usize) -> Result<Frame, TransportError> {
        debug_assert_ne!(
            src, self.rank,
            "self-receives are handled above the transport"
        );
        match self.rxs[src].recv_timeout(self.recv_timeout) {
            Ok(frame) => Ok(frame),
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout {
                peer: src,
                after_ms: self.recv_timeout.as_millis() as u64,
            }),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::PeerDeath {
                peer: src,
                detail: "in-process peer released its transport".to_string(),
            }),
        }
    }

    fn recover(&self) -> Result<(), TransportError> {
        // The channels are shared with sibling ranks and cannot be replaced
        // unilaterally, but by the recovery contract every local rank has
        // finished (failed) its job before any rank recovers — so no sends
        // are in flight and draining the inboxes restores a fresh FIFO state
        // for the retry.
        for rx in &self.rxs {
            while rx.try_recv().is_ok() {}
        }
        Ok(())
    }

    fn barrier(&self) -> Result<BarrierCost, TransportError> {
        self.barrier.wait();
        Ok(BarrierCost::default())
    }
}
