//! The pluggable point-to-point transport under the collectives.
//!
//! The collectives in [`crate::RankCtx`] are written against one abstraction:
//! [`Transport`], a rank-addressed exchange of framed messages with FIFO
//! ordering per ordered rank pair. Because every rank issues the same
//! collectives in the same order (the usage contract inherited from MPI), the
//! k-th frame rank `s` sends to rank `d` is always matched by the k-th receive
//! rank `d` posts from `s` — no slot protocol or global barrier framing is
//! needed, only ordered channels.
//!
//! Two backends:
//!
//! * [`InProcTransport`] — backend zero, the refactored shared-memory hub.
//!   Ranks are threads of one process; frames move as typed boxes through
//!   in-process channels, paying no serialisation. This is what
//!   [`Runtime::new`](crate::Runtime::new) builds and what every pre-existing
//!   caller gets.
//! * [`TcpTransport`] — shared-nothing multi-process ranks over sockets. A
//!   coordinator rendezvous assigns ranks and distributes peer addresses, a
//!   full mesh of length-prefixed byte streams carries the frames (encoded with
//!   [`WireCodec`](codec::WireMessage)), and per-peer reader/writer threads
//!   decouple the rank thread from socket backpressure. Peer death surfaces as
//!   a typed [`TransportError`] within a bounded timeout instead of a hang.
//!
//! Failures at this layer are typed ([`TransportError`]), not panics-by-way-of
//! poisoned channels: connect/bind/handshake errors surface from
//! [`TcpTransport::connect`](tcp::TcpTransport::connect), and mid-collective
//! peer loss surfaces from [`Runtime::try_execute`](crate::Runtime::try_execute)
//! as [`CommError::Transport`](crate::CommError::Transport).

pub mod codec;
mod fault;
mod inproc;
mod tcp;

use std::any::Any;
use std::fmt;

pub use codec::{CodecError, WireElem, WireMessage};
pub use fault::{FaultInjectTransport, FaultPlan};
pub use inproc::{InProcFabric, InProcTransport};
pub use tcp::{TcpConfig, TcpTransport};

/// Bytes of frame header (little-endian `u32` payload length) on byte-stream
/// backends. In-process frames have no header; their accounting uses the
/// estimated payload size alone.
pub const FRAME_HEADER_BYTES: usize = 4;

/// Largest payload a single frame may carry (1 GiB). A length prefix beyond
/// this is treated as protocol corruption, not an allocation request.
pub const MAX_FRAME_BYTES: u64 = 1 << 30;

/// One point-to-point message.
///
/// Byte-stream backends carry [`Frame::Bytes`] (a serialised
/// [`WireMessage`](codec::WireMessage) payload); the in-process backend
/// carries [`Frame::Typed`] (the value itself, no serialisation) plus the
/// wire-size estimate its byte accounting reports.
pub enum Frame {
    /// Serialised payload, excluding the length-prefix header.
    Bytes(Vec<u8>),
    /// In-process payload moved by ownership.
    Typed {
        /// The boxed message value (downcast by the receiving collective).
        payload: Box<dyn Any + Send>,
        /// What [`WireMessage::wire_size`](codec::WireMessage::wire_size)
        /// reported for the value — the bytes a wire backend would have moved.
        est_wire: u64,
    },
}

impl Frame {
    /// Wrap a typed in-process payload.
    pub fn typed<M: Send + 'static>(msg: M, est_wire: u64) -> Frame {
        Frame::Typed {
            payload: Box::new(msg),
            est_wire,
        }
    }

    /// Bytes this frame puts (or would put) on a wire, including the header
    /// for byte frames.
    pub fn wire_len(&self) -> u64 {
        match self {
            Frame::Bytes(b) => (b.len() + FRAME_HEADER_BYTES) as u64,
            Frame::Typed { est_wire, .. } => *est_wire,
        }
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Frame::Bytes(b) => write!(f, "Frame::Bytes({} bytes)", b.len()),
            Frame::Typed { est_wire, .. } => {
                write!(f, "Frame::Typed(~{est_wire} wire bytes)")
            }
        }
    }
}

/// Why a transport operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Could not bind a listening socket (coordinator or mesh listener).
    Bind {
        /// The address that failed to bind.
        addr: String,
        /// OS error detail.
        detail: String,
    },
    /// Could not reach a peer or the coordinator within the connect timeout.
    Connect {
        /// The address that could not be reached.
        addr: String,
        /// Last OS error observed while retrying.
        detail: String,
    },
    /// The rendezvous or mesh handshake failed: bad magic/version, rank-count
    /// mismatch between processes, duplicate rank claims, or missing ranks.
    Handshake {
        /// What went wrong.
        detail: String,
    },
    /// A stream ended mid-frame: fewer bytes arrived than the frame header
    /// promised.
    ShortRead {
        /// The peer rank the frame came from.
        peer: usize,
        /// Bytes the header promised.
        expected: u64,
        /// Bytes that actually arrived.
        got: u64,
    },
    /// A frame header announced a payload larger than [`MAX_FRAME_BYTES`] —
    /// stream corruption or a protocol mismatch.
    FrameTooLarge {
        /// The peer rank the frame came from.
        peer: usize,
        /// The announced length.
        len: u64,
    },
    /// A frame arrived intact but its payload failed to decode as the type
    /// the collective expected.
    Codec {
        /// The peer rank the frame came from.
        peer: usize,
        /// The decode failure.
        source: CodecError,
    },
    /// The connection to a peer closed or reset: the peer process exited,
    /// crashed, or was killed.
    PeerDeath {
        /// The rank that died.
        peer: usize,
        /// What was observed (EOF, reset, send-queue closed, ...).
        detail: String,
    },
    /// No frame arrived from a peer within the receive timeout. The peer is
    /// alive but wedged, or itself blocked on a dead rank.
    Timeout {
        /// The rank that went silent.
        peer: usize,
        /// The timeout that elapsed, in milliseconds.
        after_ms: u64,
    },
}

impl TransportError {
    /// Stable short name of the error class, for logs and machine-readable
    /// launcher output.
    pub fn kind(&self) -> &'static str {
        match self {
            TransportError::Bind { .. } => "bind",
            TransportError::Connect { .. } => "connect",
            TransportError::Handshake { .. } => "handshake",
            TransportError::ShortRead { .. } => "short-read",
            TransportError::FrameTooLarge { .. } => "frame-too-large",
            TransportError::Codec { .. } => "codec",
            TransportError::PeerDeath { .. } => "peer-death",
            TransportError::Timeout { .. } => "timeout",
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Bind { addr, detail } => {
                write!(f, "failed to bind {addr}: {detail}")
            }
            TransportError::Connect { addr, detail } => {
                write!(f, "failed to connect to {addr}: {detail}")
            }
            TransportError::Handshake { detail } => write!(f, "handshake failed: {detail}"),
            TransportError::ShortRead {
                peer,
                expected,
                got,
            } => write!(
                f,
                "short read from rank {peer}: frame promised {expected} bytes, got {got}"
            ),
            TransportError::FrameTooLarge { peer, len } => write!(
                f,
                "rank {peer} announced a {len}-byte frame (max {MAX_FRAME_BYTES}); stream corrupt"
            ),
            TransportError::Codec { peer, source } => {
                write!(f, "undecodable frame from rank {peer}: {source}")
            }
            TransportError::PeerDeath { peer, detail } => {
                write!(f, "rank {peer} died: {detail}")
            }
            TransportError::Timeout { peer, after_ms } => {
                write!(f, "no frame from rank {peer} within {after_ms} ms")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Traffic a [`Transport::barrier`] put on the wire, for the caller's
/// accounting (zero for the in-process backend, whose barrier is a shared
/// thread barrier).
#[derive(Debug, Clone, Copy, Default)]
pub struct BarrierCost {
    /// Point-to-point frames this rank sent.
    pub frames_sent: u64,
    /// Wire bytes this rank sent.
    pub wire_sent: u64,
    /// Wire bytes this rank received.
    pub wire_recv: u64,
}

/// Rank-addressed framed message exchange: the one interface the collectives
/// are written against.
///
/// Contract: frames between an ordered pair of ranks are delivered reliably
/// and in FIFO order; `send` does not block on the receiver (outbound frames
/// queue), and `recv` blocks until the next frame from `src` arrives or the
/// backend detects that it never will.
pub trait Transport: Send {
    /// This endpoint's rank, in `0..nranks`.
    fn rank(&self) -> usize;

    /// Total ranks in the job, across all participating processes.
    fn nranks(&self) -> usize;

    /// Whether payloads are serialised onto a real byte stream (`true` for
    /// sockets) or moved as typed values (`false` in-process). Callers use
    /// this to decide between [`Frame::Bytes`] and [`Frame::Typed`].
    fn is_wire(&self) -> bool;

    /// Short backend name for logs and reports (`"inproc"`, `"tcp"`).
    fn backend(&self) -> &'static str;

    /// Estimated offset (nanoseconds) to add to this process's monotonic
    /// trace timestamps to land them on rank 0's timeline. In-process
    /// backends share one clock, so the default is 0; multi-process backends
    /// measure it during their handshake.
    fn clock_offset_ns(&self) -> i64 {
        0
    }

    /// Queue `frame` for delivery to `dst`. Returns the wire bytes charged
    /// (real for byte streams, the estimate for typed frames).
    ///
    /// `dst` must differ from [`Transport::rank`]; self-sends are handled
    /// above this layer by keeping the value.
    fn send(&self, dst: usize, frame: Frame) -> Result<u64, TransportError>;

    /// Block for the next frame from `src`, failing typed if the peer dies or
    /// stays silent past the backend's receive timeout.
    fn recv(&self, src: usize) -> Result<Frame, TransportError>;

    /// Restore this endpoint to a usable state after a peer failure, clearing
    /// sticky per-peer death so a collective-level retry can run.
    ///
    /// For a multi-process backend this means tearing down the broken mesh
    /// and re-running the rendezvous claiming the same rank (see
    /// [`TcpTransport::recover`](tcp::TcpTransport)); for the in-process
    /// backend it means draining frames a half-finished job left queued. The
    /// contract mirrors the collectives': every surviving rank of the job
    /// recovers before any rank starts the retry job. The default is a no-op
    /// for backends with no recoverable state.
    fn recover(&self) -> Result<(), TransportError> {
        Ok(())
    }

    /// Block until every rank reaches this call.
    ///
    /// The default is a central barrier over empty frames (gather at rank 0,
    /// then release); backends with a cheaper primitive override it.
    fn barrier(&self) -> Result<BarrierCost, TransportError> {
        let mut cost = BarrierCost::default();
        let n = self.nranks();
        if n == 1 {
            return Ok(cost);
        }
        if self.rank() == 0 {
            for src in 1..n {
                cost.wire_recv += self.recv(src)?.wire_len();
            }
            for dst in 1..n {
                cost.wire_sent += self.send(dst, Frame::Bytes(Vec::new()))?;
                cost.frames_sent += 1;
            }
        } else {
            cost.wire_sent += self.send(0, Frame::Bytes(Vec::new()))?;
            cost.frames_sent += 1;
            cost.wire_recv += self.recv(0)?.wire_len();
        }
        Ok(cost)
    }
}
