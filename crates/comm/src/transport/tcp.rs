//! Shared-nothing multi-process ranks over TCP sockets.
//!
//! ## Rendezvous
//!
//! One process per rank. The rank-0 process binds the well-known coordinator
//! address; every other process binds an ephemeral mesh listener, connects to
//! the coordinator (retrying with exponential backoff + jitter until the
//! connect timeout, so start order does not matter) and sends a `HELLO`
//! carrying its requested rank (or auto), its expected rank count and its
//! listener address. Once all `nranks - 1` workers have reported, the
//! coordinator assigns ranks — honouring unique explicit requests, filling the
//! rest — and answers each with a `WELCOME` carrying the assigned rank and the
//! full peer address table. Mismatched rank counts, duplicate rank claims, bad
//! magic/version and missing ranks all fail the handshake with a typed
//! [`TransportError::Handshake`].
//!
//! ## Mesh
//!
//! The rendezvous connection itself becomes the rank-0 link of each worker.
//! Worker `i` then dials workers `1..i` (each identified by an `IAM` frame)
//! and accepts connections from workers `i+1..nranks`, completing the full
//! mesh. Listeners are bound before `HELLO` is sent, so a dial can never
//! outrun its target.
//!
//! ## Data plane
//!
//! Each connection gets a reader thread (length-prefixed frames into an inbox
//! channel) and a writer thread (outbox channel onto the socket, `TCP_NODELAY`),
//! so the rank thread never blocks on socket backpressure and any collective
//! pattern is deadlock-free. A closed or reset connection surfaces as
//! [`TransportError::PeerDeath`] on the next receive — within the receive
//! timeout bound — and a peer that is alive but silent past the timeout
//! surfaces as [`TransportError::Timeout`].
//!
//! ## Heartbeats
//!
//! An idle writer emits a 4-byte liveness sentinel (`0xFFFF_FFFF`, never a
//! valid frame length) every [`TcpConfig::heartbeat_interval`]; readers count
//! and swallow them. A link that stays silent — no frames *and* no heartbeats
//! — for [`TcpConfig::heartbeat_misses`] consecutive intervals is declared
//! dead, catching frozen processes and network partitions that TCP alone would
//! surface only after the OS-level keepalive horizon. Because heartbeats come
//! from the dedicated writer thread, a rank that is merely busy computing never
//! trips the detector.
//!
//! ## Recovery (REJOIN)
//!
//! [`TcpTransport::recover`] tears the current mesh down (waking every peer
//! still blocked on this rank via the EOF cascade) and re-runs the rendezvous
//! claiming the same rank explicitly. The coordinator retains its listener for
//! the transport's lifetime, so reconnect attempts — including a freshly
//! respawned process claiming a dead rank — queue in its backlog until rank 0
//! itself enters recovery and accepts them. After recovery the mesh is fresh
//! (new streams, new FIFO state, re-measured clock offsets) and a
//! collective-level retry can run the failed job from scratch. Rank 0's own
//! death is not survivable: it owns the rendezvous address.

use std::cell::{Cell, RefCell};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::OnceLock;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xtrapulp_obs::registry::Counter;

use super::{Frame, Transport, TransportError, MAX_FRAME_BYTES};

/// Protocol magic ("XPMP") opening every handshake message.
const MAGIC: u32 = 0x5850_4D50;
/// Wire protocol version; bumped on any incompatible change.
/// v2 added the clock-sync rounds after `WELCOME`; v3 added heartbeat
/// sentinel frames and rank rejoin.
const VERSION: u16 = 3;
/// `HELLO.requested_rank` value meaning "assign me any free rank".
const RANK_AUTO: u64 = u64::MAX;
/// Ping/pong rounds of the post-`WELCOME` clock sync; the round with the
/// smallest RTT wins.
const CLOCK_SYNC_ROUNDS: usize = 4;
/// Frame-header sentinel announcing "still alive, nothing to say". Strictly
/// greater than [`MAX_FRAME_BYTES`], so it can never be mistaken for a
/// payload length.
const HEARTBEAT_HEADER: u32 = 0xFFFF_FFFF;

fn heartbeats_sent_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| xtrapulp_obs::registry::counter("transport_heartbeats_sent_total"))
}

fn heartbeats_missed_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| xtrapulp_obs::registry::counter("transport_heartbeats_missed_total"))
}

fn reconnects_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| xtrapulp_obs::registry::counter("transport_reconnects_total"))
}

/// Configuration of one TCP endpoint (one rank, one process).
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Coordinator address (`host:port`). The rank-0 process binds it; every
    /// other process connects to it.
    pub coordinator: String,
    /// Explicit rank to claim, or `None` to accept coordinator assignment.
    /// The coordinator process must claim rank 0 explicitly.
    pub rank: Option<usize>,
    /// Total ranks across all processes. Every process must agree.
    pub nranks: usize,
    /// How long to keep retrying the initial connect (workers) before failing
    /// typed. Also bounds each mesh dial.
    pub connect_timeout: Duration,
    /// How long the coordinator waits for all workers (and each endpoint waits
    /// for individual handshake messages) before failing typed.
    pub handshake_timeout: Duration,
    /// How long `recv` waits for a frame before reporting
    /// [`TransportError::Timeout`]. Bounds how long a rank can hang on a
    /// wedged (rather than dead) peer.
    pub recv_timeout: Duration,
    /// How often an idle writer emits a liveness sentinel. `Duration::ZERO`
    /// disables heartbeats (and the silent-link detector) entirely.
    pub heartbeat_interval: Duration,
    /// Consecutive silent intervals — no data, no heartbeat — after which a
    /// link is declared dead.
    pub heartbeat_misses: u32,
}

impl TcpConfig {
    /// A config with the default timeouts (10 s connect, 30 s handshake,
    /// 60 s receive, 2 s heartbeats with 5 tolerated misses).
    pub fn new(coordinator: impl Into<String>, rank: Option<usize>, nranks: usize) -> Self {
        TcpConfig {
            coordinator: coordinator.into(),
            rank,
            nranks,
            connect_timeout: Duration::from_secs(10),
            handshake_timeout: Duration::from_secs(30),
            recv_timeout: Duration::from_secs(60),
            heartbeat_interval: Duration::from_secs(2),
            heartbeat_misses: 5,
        }
    }
}

/// What a reader thread forwards to the rank thread.
enum Inbound {
    Frame(Vec<u8>),
    Down(TransportError),
}

/// One established peer link.
struct Peer {
    outbox: Sender<Vec<u8>>,
    inbox: Receiver<Inbound>,
    /// Sticky death record: once a peer fails, every later receive reports the
    /// same typed error instead of a confusing timeout. Cleared only by a full
    /// mesh recovery, which replaces the `Peer` wholesale.
    dead: RefCell<Option<TransportError>>,
}

/// The mutable half of a [`TcpTransport`]: everything a recovery replaces.
///
/// Lives behind a `RefCell` because a transport is owned by exactly one rank
/// thread (the trait is `Send`, not `Sync`); interior mutability lets
/// `recover(&self)` rebuild the mesh without changing the `Transport` trait's
/// `&self` methods.
#[derive(Default)]
struct Mesh {
    /// Estimated offset from this process's trace clock to the coordinator's
    /// (rank 0's), measured during rendezvous; 0 on the coordinator.
    clock_offset_ns: i64,
    /// Indexed by peer rank; `None` at our own index.
    peers: Vec<Option<Peer>>,
    /// Original streams, kept to force-shutdown reader threads on teardown.
    streams: Vec<Option<TcpStream>>,
    readers: Vec<JoinHandle<()>>,
    writers: Vec<JoinHandle<()>>,
}

impl Mesh {
    fn peer(&self, rank: usize) -> Result<&Peer, TransportError> {
        self.peers
            .get(rank)
            .and_then(Option::as_ref)
            .ok_or(TransportError::PeerDeath {
                peer: rank,
                detail: "no link to this rank (self, out of range, or mesh torn down)".to_string(),
            })
    }

    /// Flush and close every link, joining the IO threads. Closing our sockets
    /// cascades an EOF to any peer still blocked on us, so one rank entering
    /// teardown accelerates failure detection across the whole job.
    fn teardown(&mut self) {
        // Dropping the outboxes lets each writer drain its queue and exit,
        // so frames already sent (e.g. a final result gather) still flush.
        for peer in self.peers.iter_mut().flatten() {
            let (dummy_tx, _dummy_rx) = channel();
            peer.outbox = dummy_tx;
        }
        for writer in self.writers.drain(..) {
            let _ = writer.join();
        }
        // Now tear the sockets down so blocked readers wake and exit.
        for stream in self.streams.iter().flatten() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for reader in self.readers.drain(..) {
            let _ = reader.join();
        }
        self.peers.iter_mut().for_each(|p| *p = None);
        self.streams.iter_mut().for_each(|s| *s = None);
    }
}

/// A connected TCP endpoint implementing [`Transport`].
pub struct TcpTransport {
    rank: usize,
    nranks: usize,
    recv_timeout: Duration,
    /// The connect-time configuration, kept so a recovery can re-run the
    /// rendezvous with identical parameters (claiming `rank` explicitly).
    config: TcpConfig,
    /// Rank 0 only: the rendezvous listener, retained for the transport's
    /// lifetime. Recovery re-accepts on it — no rebind (so no `TIME_WAIT`
    /// races) and early reconnects queue in its backlog.
    coordinator_listener: Option<TcpListener>,
    mesh: RefCell<Mesh>,
    recoveries: Cell<u32>,
}

impl TcpTransport {
    /// Establish the rendezvous and full mesh for this process's rank.
    ///
    /// Blocks until every rank of the job is connected (or a timeout/handshake
    /// failure surfaces). The rank-0 process acts as coordinator.
    pub fn connect(config: &TcpConfig) -> Result<TcpTransport, TransportError> {
        if config.nranks == 0 {
            return Err(TransportError::Handshake {
                detail: "a transport needs at least one rank".to_string(),
            });
        }
        if let Some(r) = config.rank {
            if r >= config.nranks {
                return Err(TransportError::Handshake {
                    detail: format!("rank {r} out of range for {} ranks", config.nranks),
                });
            }
        }
        if config.nranks == 1 {
            // A one-rank job has no peers and needs no sockets.
            return Ok(TcpTransport {
                rank: 0,
                nranks: 1,
                recv_timeout: config.recv_timeout,
                config: config.clone(),
                coordinator_listener: None,
                mesh: RefCell::new(Mesh::default()),
                recoveries: Cell::new(0),
            });
        }
        let (rank, listener, mesh) = if config.rank == Some(0) {
            let listener = bind_coordinator(config)?;
            let links = Self::rendezvous_coordinator(&listener, config)?;
            (0, Some(listener), Self::spawn_io(0, 0, config, links)?)
        } else {
            let (rank, clock_offset_ns, links) = Self::rendezvous_worker(config, config.rank)?;
            (
                rank,
                None,
                Self::spawn_io(rank, clock_offset_ns, config, links)?,
            )
        };
        let mut config = config.clone();
        config.rank = Some(rank);
        Ok(TcpTransport {
            rank,
            nranks: config.nranks,
            recv_timeout: config.recv_timeout,
            config,
            coordinator_listener: listener,
            mesh: RefCell::new(mesh),
            recoveries: Cell::new(0),
        })
    }

    /// How many times this endpoint has successfully rebuilt its mesh.
    pub fn recoveries(&self) -> u32 {
        self.recoveries.get()
    }

    /// Rank 0: collect `HELLO`s on the (already nonblocking) listener, assign
    /// ranks, answer `WELCOME`s. The rendezvous streams become the mesh links.
    fn rendezvous_coordinator(
        listener: &TcpListener,
        config: &TcpConfig,
    ) -> Result<Vec<Option<TcpStream>>, TransportError> {
        let nranks = config.nranks;
        let deadline = Instant::now() + config.handshake_timeout;
        // (requested_rank, advertised mesh addr, stream), one per worker.
        let mut hellos: Vec<(u64, String, TcpStream)> = Vec::new();
        while hellos.len() < nranks - 1 {
            match listener.accept() {
                Ok((stream, _)) => {
                    prepare_stream(&stream, config.handshake_timeout)?;
                    let hello = read_hello(&stream, nranks)?;
                    hellos.push((hello.0, hello.1, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(TransportError::Handshake {
                            detail: format!(
                                "only {} of {} ranks reported to the coordinator within {:?}",
                                hellos.len() + 1,
                                nranks,
                                config.handshake_timeout
                            ),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(handshake_io("coordinator accept", &e)),
            }
        }

        // Assign ranks: explicit claims first (unique, in range), autos fill.
        let mut claimed = vec![false; nranks];
        claimed[0] = true;
        for (req, _, _) in &hellos {
            if *req == RANK_AUTO {
                continue;
            }
            let r = *req as usize;
            if r >= nranks {
                return Err(TransportError::Handshake {
                    detail: format!("a worker claimed rank {r}, out of range for {nranks} ranks"),
                });
            }
            if claimed[r] {
                return Err(TransportError::Handshake {
                    detail: format!("rank {r} claimed twice"),
                });
            }
            claimed[r] = true;
        }
        let mut next_free = 0usize;
        let mut assigned: Vec<usize> = Vec::with_capacity(hellos.len());
        for (req, _, _) in &hellos {
            if *req == RANK_AUTO {
                while claimed[next_free] {
                    next_free += 1;
                }
                claimed[next_free] = true;
                assigned.push(next_free);
            } else {
                assigned.push(*req as usize);
            }
        }

        let mut addrs = vec![String::new(); nranks];
        for ((_, addr, _), &rank) in hellos.iter().zip(&assigned) {
            addrs[rank] = addr.clone();
        }
        let mut links: Vec<Option<TcpStream>> = (0..nranks).map(|_| None).collect();
        for ((_, _, stream), rank) in hellos.into_iter().zip(assigned) {
            write_welcome(&stream, rank, nranks, &addrs)?;
            // Serve this worker's clock-sync rounds before welcoming the
            // next, so each worker measures against an idle coordinator.
            sync_serve(&stream)?;
            links[rank] = Some(stream);
        }
        Ok(links)
    }

    /// Non-zero ranks: dial the coordinator, `HELLO`/`WELCOME` + clock sync,
    /// then complete the worker-to-worker mesh. `claim` is the rank to insist
    /// on (`None` accepts coordinator assignment; recovery always claims).
    fn rendezvous_worker(
        config: &TcpConfig,
        claim: Option<usize>,
    ) -> Result<(usize, i64, Vec<Option<TcpStream>>), TransportError> {
        let nranks = config.nranks;
        let coord = connect_retry(&config.coordinator, config.connect_timeout)?;
        prepare_stream(&coord, config.handshake_timeout)?;
        // Bind the mesh listener on the interface that reaches the coordinator,
        // before HELLO advertises it — a dialing peer can never outrun us.
        let local_ip = coord
            .local_addr()
            .map_err(|e| handshake_io("local_addr", &e))?
            .ip();
        let listener = TcpListener::bind((local_ip, 0)).map_err(|e| TransportError::Bind {
            addr: format!("{local_ip}:0"),
            detail: e.to_string(),
        })?;
        let listen_addr = listener
            .local_addr()
            .map_err(|e| handshake_io("listener local_addr", &e))?
            .to_string();

        let requested = claim.map_or(RANK_AUTO, |r| r as u64);
        write_hello(&coord, requested, nranks, &listen_addr)?;
        let (my_rank, addrs) = read_welcome(&coord, nranks)?;
        if let Some(claimed) = claim {
            if my_rank != claimed {
                return Err(TransportError::Handshake {
                    detail: format!("claimed rank {claimed} but coordinator assigned {my_rank}"),
                });
            }
        }
        let clock_offset_ns = sync_measure(&coord)?;

        let mut links: Vec<Option<TcpStream>> = (0..nranks).map(|_| None).collect();
        links[0] = Some(coord);
        // Dial every lower-ranked worker; they are past WELCOME or their
        // listener backlog holds us until they are.
        for (peer, addr) in addrs.iter().enumerate().take(my_rank).skip(1) {
            let stream = connect_retry(addr, config.connect_timeout)?;
            prepare_stream(&stream, config.handshake_timeout)?;
            write_iam(&stream, my_rank)?;
            links[peer] = Some(stream);
        }
        // Accept every higher-ranked worker.
        listener
            .set_nonblocking(true)
            .map_err(|e| handshake_io("mesh listener", &e))?;
        let deadline = Instant::now() + config.handshake_timeout;
        let mut pending = nranks - 1 - my_rank;
        while pending > 0 {
            match listener.accept() {
                Ok((stream, _)) => {
                    prepare_stream(&stream, config.handshake_timeout)?;
                    let peer = read_iam(&stream)?;
                    if peer <= my_rank || peer >= nranks {
                        return Err(TransportError::Handshake {
                            detail: format!("mesh peer announced invalid rank {peer}"),
                        });
                    }
                    if links[peer].is_some() {
                        return Err(TransportError::Handshake {
                            detail: format!("rank {peer} connected twice"),
                        });
                    }
                    links[peer] = Some(stream);
                    pending -= 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(TransportError::Handshake {
                            detail: format!(
                                "rank {my_rank} still waiting for {pending} mesh peers after {:?}",
                                config.handshake_timeout
                            ),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(handshake_io("mesh accept", &e)),
            }
        }
        Ok((my_rank, clock_offset_ns, links))
    }

    /// Spawn the per-peer reader/writer threads over established links.
    fn spawn_io(
        rank: usize,
        clock_offset_ns: i64,
        config: &TcpConfig,
        links: Vec<Option<TcpStream>>,
    ) -> Result<Mesh, TransportError> {
        let nranks = config.nranks;
        let heartbeat = config.heartbeat_interval;
        let mut peers: Vec<Option<Peer>> = (0..nranks).map(|_| None).collect();
        let mut streams: Vec<Option<TcpStream>> = (0..nranks).map(|_| None).collect();
        let mut readers = Vec::new();
        let mut writers = Vec::new();
        for (peer_rank, link) in links.into_iter().enumerate() {
            let Some(stream) = link else { continue };
            // Handshake used read timeouts; the data plane's socket timeout is
            // the heartbeat interval (each expiry is one "missed" tick for the
            // silent-link detector), or unbounded with heartbeats disabled.
            let read_timeout = (heartbeat > Duration::ZERO).then_some(heartbeat);
            stream
                .set_read_timeout(read_timeout)
                .and_then(|()| stream.set_nodelay(true))
                .map_err(|e| handshake_io("stream setup", &e))?;
            let reader_stream = stream.try_clone().map_err(|e| handshake_io("clone", &e))?;
            let writer_stream = stream.try_clone().map_err(|e| handshake_io("clone", &e))?;
            let (out_tx, out_rx) = channel::<Vec<u8>>();
            let (in_tx, in_rx) = channel::<Inbound>();
            let max_misses = config.heartbeat_misses.max(1);
            readers.push(
                std::thread::Builder::new()
                    .name(format!("xtrapulp-tcp-r{rank}-from{peer_rank}"))
                    .spawn(move || reader_main(reader_stream, peer_rank, in_tx, max_misses))
                    .map_err(|e| handshake_io("spawn reader", &e))?,
            );
            writers.push(
                std::thread::Builder::new()
                    .name(format!("xtrapulp-tcp-r{rank}-to{peer_rank}"))
                    .spawn(move || writer_main(writer_stream, out_rx, heartbeat))
                    .map_err(|e| handshake_io("spawn writer", &e))?,
            );
            peers[peer_rank] = Some(Peer {
                outbox: out_tx,
                inbox: in_rx,
                dead: RefCell::new(None),
            });
            streams[peer_rank] = Some(stream);
        }
        Ok(Mesh {
            clock_offset_ns,
            peers,
            streams,
            readers,
            writers,
        })
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nranks(&self) -> usize {
        self.nranks
    }

    fn is_wire(&self) -> bool {
        true
    }

    fn backend(&self) -> &'static str {
        "tcp"
    }

    fn clock_offset_ns(&self) -> i64 {
        self.mesh.borrow().clock_offset_ns
    }

    fn send(&self, dst: usize, frame: Frame) -> Result<u64, TransportError> {
        let Frame::Bytes(bytes) = frame else {
            unreachable!("typed frames are never handed to a wire transport");
        };
        let mesh = self.mesh.borrow();
        let peer = mesh.peer(dst)?;
        if let Some(err) = peer.dead.borrow().as_ref() {
            return Err(err.clone());
        }
        let wire = (bytes.len() + super::FRAME_HEADER_BYTES) as u64;
        peer.outbox.send(bytes).map_err(|_| {
            let err = TransportError::PeerDeath {
                peer: dst,
                detail: "connection closed (send queue gone)".to_string(),
            };
            *peer.dead.borrow_mut() = Some(err.clone());
            err
        })?;
        Ok(wire)
    }

    fn recv(&self, src: usize) -> Result<Frame, TransportError> {
        let mesh = self.mesh.borrow();
        let peer = mesh.peer(src)?;
        if let Some(err) = peer.dead.borrow().as_ref() {
            return Err(err.clone());
        }
        match peer.inbox.recv_timeout(self.recv_timeout) {
            Ok(Inbound::Frame(bytes)) => Ok(Frame::Bytes(bytes)),
            Ok(Inbound::Down(err)) => {
                *peer.dead.borrow_mut() = Some(err.clone());
                Err(err)
            }
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout {
                peer: src,
                after_ms: self.recv_timeout.as_millis() as u64,
            }),
            Err(RecvTimeoutError::Disconnected) => {
                let err = TransportError::PeerDeath {
                    peer: src,
                    detail: "connection closed (receive queue gone)".to_string(),
                };
                *peer.dead.borrow_mut() = Some(err.clone());
                Err(err)
            }
        }
    }

    fn recover(&self) -> Result<(), TransportError> {
        if self.nranks == 1 {
            return Ok(());
        }
        // Tear the old mesh down first: our closing sockets wake any peer
        // still blocked on us, spreading failure detection cluster-wide.
        self.mesh.borrow_mut().teardown();
        let mesh = match &self.coordinator_listener {
            Some(listener) => {
                let links = Self::rendezvous_coordinator(listener, &self.config)?;
                Self::spawn_io(self.rank, 0, &self.config, links)?
            }
            None => {
                let (rank, clock_offset_ns, links) =
                    Self::rendezvous_worker(&self.config, Some(self.rank))?;
                Self::spawn_io(rank, clock_offset_ns, &self.config, links)?
            }
        };
        *self.mesh.borrow_mut() = mesh;
        self.recoveries.set(self.recoveries.get() + 1);
        reconnects_counter().inc();
        Ok(())
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.mesh.borrow_mut().teardown();
    }
}

fn bind_coordinator(config: &TcpConfig) -> Result<TcpListener, TransportError> {
    let listener = TcpListener::bind(&config.coordinator).map_err(|e| TransportError::Bind {
        addr: config.coordinator.clone(),
        detail: e.to_string(),
    })?;
    listener
        .set_nonblocking(true)
        .map_err(|e| handshake_io("coordinator listener", &e))?;
    Ok(listener)
}

/// Reader thread: length-prefixed frames from one peer into the inbox,
/// tolerating up to `max_misses` consecutive heartbeat-interval silences.
fn reader_main(stream: TcpStream, peer: usize, inbox: Sender<Inbound>, max_misses: u32) {
    let mut stream = HeartbeatRead {
        inner: stream,
        misses: 0,
        max_misses,
    };
    loop {
        match read_frame(&mut stream, peer, MAX_FRAME_BYTES) {
            Ok(Some(bytes)) => {
                if inbox.send(Inbound::Frame(bytes)).is_err() {
                    return; // transport dropped; nobody is listening
                }
            }
            Ok(None) => {
                let _ = inbox.send(Inbound::Down(TransportError::PeerDeath {
                    peer,
                    detail: "connection closed by peer".to_string(),
                }));
                return;
            }
            Err(err) => {
                let _ = inbox.send(Inbound::Down(err));
                return;
            }
        }
    }
}

/// A [`Read`] adaptor that turns socket read timeouts into missed-heartbeat
/// ticks: each expiry of the socket's read timeout (one heartbeat interval)
/// counts one miss, any arriving byte resets the count, and `max_misses`
/// consecutive misses surface as a timeout error (mapped to a typed peer
/// death by [`read_frame`]).
struct HeartbeatRead {
    inner: TcpStream,
    misses: u32,
    max_misses: u32,
}

impl Read for HeartbeatRead {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.inner.read(buf) {
                Ok(n) => {
                    self.misses = 0;
                    return Ok(n);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    self.misses += 1;
                    heartbeats_missed_counter().inc();
                    if self.misses >= self.max_misses {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            format!(
                                "link silent for {} heartbeat intervals (no data, no heartbeat)",
                                self.max_misses
                            ),
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Read one `[u32 len][payload]` frame, silently consuming heartbeat
/// sentinels. `Ok(None)` is a clean EOF at a frame boundary; a mid-frame EOF
/// is a typed [`TransportError::ShortRead`].
///
/// Exposed (crate-internal) so the framing rules are unit-testable without
/// sockets.
pub(crate) fn read_frame(
    stream: &mut impl Read,
    peer: usize,
    max_frame: u64,
) -> Result<Option<Vec<u8>>, TransportError> {
    loop {
        let mut header = [0u8; super::FRAME_HEADER_BYTES];
        let mut got = 0usize;
        while got < header.len() {
            match stream.read(&mut header[got..]) {
                Ok(0) if got == 0 => return Ok(None),
                Ok(0) => {
                    return Err(TransportError::ShortRead {
                        peer,
                        expected: header.len() as u64,
                        got: got as u64,
                    })
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(TransportError::PeerDeath {
                        peer,
                        detail: format!("read failed: {e}"),
                    })
                }
            }
        }
        let len = u32::from_le_bytes(header);
        if len == HEARTBEAT_HEADER {
            // Liveness sentinel, not a frame; go read the next header.
            continue;
        }
        let len = len as u64;
        if len > max_frame {
            return Err(TransportError::FrameTooLarge { peer, len });
        }
        let mut payload = vec![0u8; len as usize];
        let mut got = 0usize;
        while got < payload.len() {
            match stream.read(&mut payload[got..]) {
                Ok(0) => {
                    return Err(TransportError::ShortRead {
                        peer,
                        expected: len,
                        got: got as u64,
                    })
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(TransportError::PeerDeath {
                        peer,
                        detail: format!("read failed: {e}"),
                    })
                }
            }
        }
        return Ok(Some(payload));
    }
}

/// Writer thread: drain the outbox onto the socket until it closes or errors,
/// emitting a heartbeat sentinel whenever the outbox stays idle a full
/// interval (zero interval disables heartbeats).
fn writer_main(mut stream: TcpStream, outbox: Receiver<Vec<u8>>, heartbeat: Duration) {
    let write_frame = |stream: &mut TcpStream, bytes: Vec<u8>| -> bool {
        let header = (bytes.len() as u32).to_le_bytes();
        if stream.write_all(&header).is_err() || stream.write_all(&bytes).is_err() {
            return false; // dropping the receiver poisons future sends with PeerDeath
        }
        let _ = stream.flush();
        true
    };
    if heartbeat == Duration::ZERO {
        while let Ok(bytes) = outbox.recv() {
            if !write_frame(&mut stream, bytes) {
                return;
            }
        }
        return;
    }
    loop {
        match outbox.recv_timeout(heartbeat) {
            Ok(bytes) => {
                if !write_frame(&mut stream, bytes) {
                    return;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if stream.write_all(&HEARTBEAT_HEADER.to_le_bytes()).is_err() {
                    return;
                }
                let _ = stream.flush();
                heartbeats_sent_counter().inc();
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

// ----------------------------------------------------------------------------------
// Handshake wire helpers (blocking IO with socket read timeouts set upstream).
// ----------------------------------------------------------------------------------

fn handshake_io(what: &str, e: &dyn std::fmt::Display) -> TransportError {
    TransportError::Handshake {
        detail: format!("{what}: {e}"),
    }
}

fn prepare_stream(stream: &TcpStream, handshake_timeout: Duration) -> Result<(), TransportError> {
    stream
        .set_read_timeout(Some(handshake_timeout))
        .and_then(|()| stream.set_nodelay(true))
        .map_err(|e| handshake_io("stream setup", &e))
}

/// Exponential backoff with deterministic jitter for dial retries: attempt
/// `k` waits `min(10ms << k, 500ms)` plus up to half that again of jitter
/// derived by mixing `seed` and `k` (so concurrently-starting workers spread
/// out instead of dialing in lockstep).
pub(crate) fn backoff_delay(attempt: u32, seed: u64) -> Duration {
    const BASE_MS: u64 = 10;
    const CAP_MS: u64 = 500;
    let exp = BASE_MS.saturating_mul(1u64 << attempt.min(10)).min(CAP_MS);
    // splitmix64-style mix of (seed, attempt) for stateless deterministic jitter.
    let mut x = seed.wrapping_add((u64::from(attempt) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let jitter = x % (exp / 2 + 1);
    Duration::from_millis(exp + jitter)
}

/// FNV-1a 64 over `bytes`; seeds the per-address jitter stream.
fn addr_seed(addr: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in addr.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn connect_retry(addr: &str, timeout: Duration) -> Result<TcpStream, TransportError> {
    let deadline = Instant::now() + timeout;
    let seed = addr_seed(addr);
    let mut last = String::from("no address resolved");
    let mut attempt = 0u32;
    loop {
        match addr.to_socket_addrs() {
            Ok(resolved) => {
                let addrs: Vec<SocketAddr> = resolved.collect();
                for sa in &addrs {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    let dial = remaining
                        .min(Duration::from_millis(500))
                        .max(Duration::from_millis(10));
                    match TcpStream::connect_timeout(sa, dial) {
                        Ok(stream) => return Ok(stream),
                        Err(e) => last = e.to_string(),
                    }
                }
            }
            Err(e) => last = e.to_string(),
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(TransportError::Connect {
                addr: addr.to_string(),
                detail: last,
            });
        }
        let delay = backoff_delay(attempt, seed).min(deadline.saturating_duration_since(now));
        attempt = attempt.saturating_add(1);
        std::thread::sleep(delay);
    }
}

fn write_all(stream: &TcpStream, bytes: &[u8]) -> Result<(), TransportError> {
    (&mut &*stream)
        .write_all(bytes)
        .map_err(|e| handshake_io("handshake write", &e))
}

fn read_exact(stream: &TcpStream, buf: &mut [u8]) -> Result<(), TransportError> {
    (&mut &*stream)
        .read_exact(buf)
        .map_err(|e| handshake_io("handshake read", &e))
}

fn read_u16(stream: &TcpStream) -> Result<u16, TransportError> {
    let mut b = [0u8; 2];
    read_exact(stream, &mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32(stream: &TcpStream) -> Result<u32, TransportError> {
    let mut b = [0u8; 4];
    read_exact(stream, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(stream: &TcpStream) -> Result<u64, TransportError> {
    let mut b = [0u8; 8];
    read_exact(stream, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_string(stream: &TcpStream) -> Result<String, TransportError> {
    let len = read_u16(stream)? as usize;
    let mut b = vec![0u8; len];
    read_exact(stream, &mut b)?;
    String::from_utf8(b).map_err(|e| handshake_io("handshake string", &e))
}

fn push_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn check_magic(stream: &TcpStream, what: &str) -> Result<(), TransportError> {
    let magic = read_u32(stream)?;
    if magic != MAGIC {
        return Err(TransportError::Handshake {
            detail: format!("{what}: bad magic {magic:#010x} (not an xtrapulp-mp peer?)"),
        });
    }
    let version = read_u16(stream)?;
    if version != VERSION {
        return Err(TransportError::Handshake {
            detail: format!("{what}: protocol version {version}, this build speaks {VERSION}"),
        });
    }
    Ok(())
}

fn write_hello(
    stream: &TcpStream,
    requested_rank: u64,
    nranks: usize,
    listen_addr: &str,
) -> Result<(), TransportError> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&requested_rank.to_le_bytes());
    out.extend_from_slice(&(nranks as u64).to_le_bytes());
    push_string(&mut out, listen_addr);
    write_all(stream, &out)
}

/// Returns `(requested_rank, advertised_mesh_addr)`.
fn read_hello(stream: &TcpStream, nranks: usize) -> Result<(u64, String), TransportError> {
    check_magic(stream, "HELLO")?;
    let requested = read_u64(stream)?;
    let their_nranks = read_u64(stream)? as usize;
    if their_nranks != nranks {
        return Err(TransportError::Handshake {
            detail: format!(
                "rank-count mismatch: a worker was launched with {their_nranks} ranks, \
                 the coordinator with {nranks}"
            ),
        });
    }
    let addr = read_string(stream)?;
    Ok((requested, addr))
}

fn write_welcome(
    stream: &TcpStream,
    rank: usize,
    nranks: usize,
    addrs: &[String],
) -> Result<(), TransportError> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(rank as u64).to_le_bytes());
    out.extend_from_slice(&(nranks as u64).to_le_bytes());
    for addr in addrs {
        push_string(&mut out, addr);
    }
    write_all(stream, &out)
}

/// Returns `(assigned_rank, peer_addrs)`.
fn read_welcome(stream: &TcpStream, nranks: usize) -> Result<(usize, Vec<String>), TransportError> {
    check_magic(stream, "WELCOME")?;
    let rank = read_u64(stream)? as usize;
    let their_nranks = read_u64(stream)? as usize;
    if their_nranks != nranks {
        return Err(TransportError::Handshake {
            detail: format!(
                "rank-count mismatch: coordinator runs {their_nranks} ranks, this worker {nranks}"
            ),
        });
    }
    if rank >= nranks {
        return Err(TransportError::Handshake {
            detail: format!("coordinator assigned rank {rank}, out of range for {nranks}"),
        });
    }
    let mut addrs = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        addrs.push(read_string(stream)?);
    }
    Ok((rank, addrs))
}

/// Coordinator side of the clock sync: answer each ping with the trace
/// clock's current nanosecond reading.
fn sync_serve(stream: &TcpStream) -> Result<(), TransportError> {
    for _ in 0..CLOCK_SYNC_ROUNDS {
        let _ping = read_u64(stream)?;
        write_all(stream, &xtrapulp_obs::trace::now_ns().to_le_bytes())?;
    }
    Ok(())
}

/// Worker side: ping/pong `CLOCK_SYNC_ROUNDS` times and estimate the offset
/// from this process's trace clock to the coordinator's as
/// `coord_now − (t0 + t1) / 2`, keeping the round with the smallest RTT
/// (least queueing, so the symmetric-delay assumption is closest to true).
fn sync_measure(stream: &TcpStream) -> Result<i64, TransportError> {
    let mut best_rtt = u64::MAX;
    let mut best_offset = 0i64;
    for round in 0..CLOCK_SYNC_ROUNDS {
        let t0 = xtrapulp_obs::trace::now_ns();
        write_all(stream, &(round as u64).to_le_bytes())?;
        let coord_now = read_u64(stream)?;
        let t1 = xtrapulp_obs::trace::now_ns();
        let rtt = t1.saturating_sub(t0);
        if rtt < best_rtt {
            best_rtt = rtt;
            let midpoint = (t0 + rtt / 2) as i64;
            best_offset = coord_now as i64 - midpoint;
        }
    }
    Ok(best_offset)
}

fn write_iam(stream: &TcpStream, rank: usize) -> Result<(), TransportError> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(rank as u64).to_le_bytes());
    write_all(stream, &out)
}

fn read_iam(stream: &TcpStream) -> Result<usize, TransportError> {
    check_magic(stream, "IAM")?;
    Ok(read_u64(stream)? as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes(payload: &[u8]) -> Vec<u8> {
        let mut out = (payload.len() as u32).to_le_bytes().to_vec();
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn read_frame_round_trips_and_reports_clean_eof() {
        let mut data = frame_bytes(b"hello");
        data.extend_from_slice(&frame_bytes(b""));
        let mut cur = Cursor::new(data);
        assert_eq!(
            read_frame(&mut cur, 1, 64).unwrap(),
            Some(b"hello".to_vec())
        );
        assert_eq!(read_frame(&mut cur, 1, 64).unwrap(), Some(Vec::new()));
        assert_eq!(read_frame(&mut cur, 1, 64).unwrap(), None);
    }

    #[test]
    fn read_frame_accepts_exactly_max_length() {
        let payload = vec![7u8; 64];
        let mut cur = Cursor::new(frame_bytes(&payload));
        assert_eq!(read_frame(&mut cur, 0, 64).unwrap(), Some(payload));
    }

    #[test]
    fn read_frame_rejects_oversized_length_prefix() {
        let mut cur = Cursor::new(frame_bytes(&[0u8; 65]));
        match read_frame(&mut cur, 3, 64) {
            Err(TransportError::FrameTooLarge { peer: 3, len: 65 }) => {}
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn read_frame_reports_truncation_as_short_read() {
        // Header promises 10 bytes, stream carries 4.
        let mut data = (10u32).to_le_bytes().to_vec();
        data.extend_from_slice(&[1, 2, 3, 4]);
        let mut cur = Cursor::new(data);
        match read_frame(&mut cur, 9, 64) {
            Err(TransportError::ShortRead {
                peer: 9,
                expected: 10,
                got: 4,
            }) => {}
            other => panic!("expected ShortRead, got {other:?}"),
        }
        // EOF inside the header itself is also a short read.
        let mut cur = Cursor::new(vec![5u8, 0]);
        assert!(matches!(
            read_frame(&mut cur, 0, 64),
            Err(TransportError::ShortRead { .. })
        ));
    }

    #[test]
    fn read_frame_skips_heartbeat_sentinels() {
        // heartbeat, frame, heartbeat, heartbeat, frame, heartbeat, EOF
        let hb = HEARTBEAT_HEADER.to_le_bytes();
        let mut data = hb.to_vec();
        data.extend_from_slice(&frame_bytes(b"abc"));
        data.extend_from_slice(&hb);
        data.extend_from_slice(&hb);
        data.extend_from_slice(&frame_bytes(b"d"));
        data.extend_from_slice(&hb);
        let mut cur = Cursor::new(data);
        assert_eq!(read_frame(&mut cur, 0, 64).unwrap(), Some(b"abc".to_vec()));
        assert_eq!(read_frame(&mut cur, 0, 64).unwrap(), Some(b"d".to_vec()));
        // The trailing heartbeat is consumed, then a clean EOF follows.
        assert_eq!(read_frame(&mut cur, 0, 64).unwrap(), None);
    }

    #[test]
    fn backoff_delay_is_deterministic_bounded_and_grows() {
        for attempt in 0..20 {
            let a = backoff_delay(attempt, 42);
            let b = backoff_delay(attempt, 42);
            assert_eq!(a, b, "same (attempt, seed) must give the same delay");
            // exp is capped at 500ms and jitter at half of exp.
            assert!(a <= Duration::from_millis(750), "attempt {attempt}: {a:?}");
            assert!(a >= Duration::from_millis(10), "attempt {attempt}: {a:?}");
        }
        // The deterministic (jitter-free) floor grows exponentially early on.
        let floor = |attempt: u32| Duration::from_millis(10 * (1 << attempt.min(10)).min(50));
        assert!(backoff_delay(4, 7) >= floor(4));
        // Different seeds decorrelate the jitter for at least one attempt.
        assert!((0..8).any(|k| backoff_delay(k, 1) != backoff_delay(k, 2)));
    }
}
