//! The stall watchdog: per-collective progress deadlines that distinguish a
//! live-locked or stalled rank from a merely slow one.
//!
//! PR 8's heartbeat/PeerDeath detection only catches *dead* peers; a rank
//! that is alive but making no progress (a live-locked collective, a peer
//! wedged in a syscall, an injected delay) hangs the job indistinguishably
//! from a slow run. The watchdog closes that gap: every
//! [`RankCtx`](crate::RankCtx) keeps a per-collective progress beacon, reset
//! at collective entry and advanced after every transport operation. When
//! the gap between two progress marks reaches the runtime's configured
//! deadline ([`Runtime::set_watchdog_deadline`](
//! crate::Runtime::set_watchdog_deadline)), the rank trips — it records a
//! [`FlightKind::Watchdog`](xtrapulp_obs::FlightKind) event naming the
//! collective, rank, and frame, dumps the flight recorder to a post-mortem
//! file, and unwinds with a [`Stall`] payload that `Runtime::try_execute`
//! surfaces as [`CommError::Stalled`](crate::CommError::Stalled).
//!
//! The deadline is per-runtime and **disabled by default**: existing
//! kill/respawn drills rely on plain transport timeouts. It is sampled once
//! per job, at dispatch, so flipping it mid-job affects only subsequent jobs
//! — which is also how the flight-recorder gather runs un-watched after a
//! trip.
//!
//! A slow-but-progressing collective never trips: each transport operation
//! that completes within the deadline resets the beacon, so only a genuine
//! per-operation stall (one op outwaiting the whole deadline) fires.

/// Panic payload a tripped watchdog unwinds a rank job with;
/// `Runtime::try_execute` downcasts it into `CommError::Stalled`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stall {
    /// The collective the rank was inside when progress stopped.
    pub collective: &'static str,
    /// The rank that tripped.
    pub rank: usize,
    /// The rank's transport-operation frame counter at the stalled operation.
    pub frame: u64,
    /// How long the rank waited without progress before tripping.
    pub waited_ms: u64,
}
