//! Shared rendezvous state used by all ranks of a [`crate::Runtime`].
//!
//! The hub owns one *slot* per rank (used by rooted and all-to-all-read collectives such
//! as broadcast, allgather and allreduce) and one *mailbox* per ordered rank pair (used by
//! alltoall/alltoallv, where rank `s` deposits into `mailbox[s][d]` and rank `d` takes
//! from it). Collectives are framed by the shared barrier so a slot is never reused
//! before every rank has finished reading it.

use std::any::Any;
use std::sync::Barrier;

use parking_lot::Mutex;

/// Type-erased payload deposited by one rank for consumption by others.
pub(crate) type Payload = Option<Box<dyn Any + Send>>;

/// Shared state for one runtime instance.
pub(crate) struct Hub {
    nranks: usize,
    barrier: Barrier,
    /// `slots[r]` is written by rank `r` and read (not taken) by any rank.
    slots: Vec<Mutex<Payload>>,
    /// `mailbox[src][dst]` is written by `src` and taken by `dst`.
    mailbox: Vec<Vec<Mutex<Payload>>>,
}

impl Hub {
    pub(crate) fn new(nranks: usize) -> Self {
        assert!(nranks > 0, "a runtime needs at least one rank");
        let slots = (0..nranks).map(|_| Mutex::new(None)).collect();
        let mailbox = (0..nranks)
            .map(|_| (0..nranks).map(|_| Mutex::new(None)).collect())
            .collect();
        Hub {
            nranks,
            barrier: Barrier::new(nranks),
            slots,
            mailbox,
        }
    }

    pub(crate) fn nranks(&self) -> usize {
        self.nranks
    }

    /// Block until every rank has reached this point.
    pub(crate) fn barrier(&self) {
        self.barrier.wait();
    }

    /// Deposit a value into this rank's slot. Must be paired with [`Hub::clear_slot`]
    /// after the readers have passed a barrier.
    pub(crate) fn put_slot<T: Send + 'static>(&self, rank: usize, value: T) {
        let mut guard = self.slots[rank].lock();
        debug_assert!(guard.is_none(), "slot {rank} reused before being cleared");
        *guard = Some(Box::new(value));
    }

    /// Read (clone out of) another rank's slot.
    pub(crate) fn read_slot<T: Clone + Send + 'static>(&self, rank: usize) -> T {
        let guard = self.slots[rank].lock();
        let boxed = guard
            .as_ref()
            .expect("collective protocol error: slot read before deposit");
        boxed
            .downcast_ref::<T>()
            .expect("collective type mismatch between ranks")
            .clone()
    }

    /// Apply `f` to the value in another rank's slot without cloning it.
    pub(crate) fn with_slot<T: Send + 'static, R>(
        &self,
        rank: usize,
        f: impl FnOnce(&T) -> R,
    ) -> R {
        let guard = self.slots[rank].lock();
        let boxed = guard
            .as_ref()
            .expect("collective protocol error: slot read before deposit");
        f(boxed
            .downcast_ref::<T>()
            .expect("collective type mismatch between ranks"))
    }

    /// Remove the value this rank deposited in its slot.
    pub(crate) fn clear_slot(&self, rank: usize) {
        *self.slots[rank].lock() = None;
    }

    /// Deposit a message from `src` addressed to `dst`.
    pub(crate) fn put_mail<T: Send + 'static>(&self, src: usize, dst: usize, value: T) {
        let mut guard = self.mailbox[src][dst].lock();
        debug_assert!(
            guard.is_none(),
            "mailbox ({src} -> {dst}) reused before being taken"
        );
        *guard = Some(Box::new(value));
    }

    /// Take (move out) the message `src` addressed to `dst`, if any.
    pub(crate) fn take_mail<T: Send + 'static>(&self, src: usize, dst: usize) -> Option<T> {
        let mut guard = self.mailbox[src][dst].lock();
        guard.take().map(|boxed| {
            *boxed
                .downcast::<T>()
                .expect("collective type mismatch between ranks")
        })
    }
}
