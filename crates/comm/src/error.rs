//! Typed errors for runtime construction and distributed execution.

use std::fmt;

use crate::transport::TransportError;

/// Why building or driving a [`Runtime`](crate::Runtime) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A runtime was requested with zero ranks.
    ZeroRanks,
    /// A transport claimed a rank outside `0..nranks`.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// The job's rank count.
        nranks: usize,
    },
    /// Transports handed to one runtime disagree on the job's rank count.
    RankCountMismatch {
        /// The rank count of the first transport.
        expected: usize,
        /// The conflicting rank count.
        got: usize,
    },
    /// The OS refused to spawn a rank worker thread.
    Spawn {
        /// OS error detail.
        detail: String,
    },
    /// A collective failed at the transport layer (peer death, timeout,
    /// corrupt frame, ...).
    Transport(TransportError),
    /// A recoverable execution gave up: its recovery budget ran out, or a
    /// recovery attempt itself failed.
    Aborted {
        /// Successful membership recoveries performed before giving up.
        recoveries: u32,
        /// The transport failure that ended the job.
        last: TransportError,
    },
    /// The cross-rank trace gather succeeded but a blob failed to decode or
    /// the merged trace file could not be written.
    TraceExport {
        /// What went wrong.
        detail: String,
    },
    /// The stall watchdog tripped: a rank stopped making progress inside a
    /// collective for longer than the configured deadline while still alive
    /// (distinct from [`CommError::Transport`] peer death or timeout — the
    /// peer was *there*, just not moving).
    Stalled {
        /// The collective the stalled rank was inside.
        collective: &'static str,
        /// The rank that tripped the watchdog.
        rank: usize,
        /// The rank's transport-operation frame counter at the stall.
        frame: u64,
        /// Milliseconds waited without progress before tripping.
        waited_ms: u64,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::ZeroRanks => write!(f, "a Runtime requires at least one rank"),
            CommError::RankOutOfRange { rank, nranks } => {
                write!(
                    f,
                    "transport claims rank {rank}, out of range for {nranks} ranks"
                )
            }
            CommError::RankCountMismatch { expected, got } => {
                write!(
                    f,
                    "transports disagree on the rank count: expected {expected}, got {got}"
                )
            }
            CommError::Spawn { detail } => write!(f, "failed to spawn rank worker: {detail}"),
            CommError::Transport(e) => write!(f, "transport failure: {e}"),
            CommError::Aborted { recoveries, last } => write!(
                f,
                "job aborted after {recoveries} successful recoveries: {last}"
            ),
            CommError::TraceExport { detail } => write!(f, "trace export failed: {detail}"),
            CommError::Stalled {
                collective,
                rank,
                frame,
                waited_ms,
            } => write!(
                f,
                "watchdog tripped: rank {rank} made no progress in {collective} \
                 at frame {frame} for {waited_ms} ms"
            ),
        }
    }
}

impl std::error::Error for CommError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CommError::Transport(e) => Some(e),
            CommError::Aborted { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<TransportError> for CommError {
    fn from(e: TransportError) -> Self {
        CommError::Transport(e)
    }
}
