//! # xtrapulp-comm
//!
//! A rank-parallel, bulk-synchronous communication runtime that plays the role MPI plays
//! in the original XtraPuLP implementation.
//!
//! The paper's partitioner is an MPI+OpenMP code: every MPI *task* owns a slice of the
//! graph, computes on it with OpenMP threads, and exchanges boundary updates with
//! `MPI_Alltoallv`, `MPI_Allreduce` and `MPI_Bcast` at superstep boundaries. This crate
//! reproduces exactly that programming model on a single machine: each **rank** is an OS
//! thread with private state, and the [`RankCtx`] handle exposes the same family of
//! collectives. Intra-rank parallelism is delegated to `rayon` by the algorithm crates,
//! mirroring the OpenMP threading of the original.
//!
//! Because the partitioning algorithms only observe collective *semantics* (what data
//! arrives where, and when), running ranks as threads preserves the algorithmic behaviour
//! the paper studies — batched ghost updates, stale labels within a superstep, and the
//! dynamic `mult` stabiliser — while remaining runnable on a laptop. Communication volume
//! is tracked per rank in [`CommStats`] so experiments can report the quantity that would
//! have crossed the network.
//!
//! ## Transports
//!
//! The collectives are written against the pluggable [`Transport`] trait (see
//! [`transport`]). [`Runtime::new`] hosts every rank as a thread of this
//! process over the in-process backend; [`Runtime::with_transport`] hosts one
//! rank of a shared-nothing multi-process job over a connected
//! [`TcpTransport`], where frames really are serialised byte streams and peer
//! failures surface as typed [`TransportError`]s via [`Runtime::try_execute`].
//!
//! ## Example
//!
//! ```
//! use xtrapulp_comm::Runtime;
//!
//! // Sum rank ids across 4 ranks with an allreduce.
//! let results = Runtime::run(4, |ctx| {
//!     let mine = vec![ctx.rank() as u64];
//!     let total = ctx.allreduce_sum_u64(&mine);
//!     total[0]
//! });
//! assert_eq!(results, vec![6, 6, 6, 6]);
//! ```
//!
//! ## Usage contract
//!
//! As with MPI, collectives must be called by **every** rank of the runtime, in the same
//! order. Violating this deadlocks the step, exactly as it would on a real cluster.

mod ctx;
mod error;
mod stats;
mod timer;
pub mod transport;
pub mod watchdog;

pub use ctx::{ExecOutcome, RankCtx, Runtime};
pub use error::CommError;
pub use stats::{
    CollectiveKind, CollectiveVolume, CommStats, CommStatsSnapshot, PerCollectiveSnapshot,
};
pub use timer::{PhaseTimer, Timer};
pub use transport::{
    BarrierCost, CodecError, FaultInjectTransport, FaultPlan, Frame, InProcFabric, InProcTransport,
    TcpConfig, TcpTransport, Transport, TransportError, WireElem, WireMessage,
};

#[cfg(test)]
mod tests;
