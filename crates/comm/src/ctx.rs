//! The runtime entry point ([`Runtime::run`]) and the per-rank handle ([`RankCtx`])
//! exposing MPI-style collectives.

use std::mem::size_of;
use std::sync::Arc;

use crate::hub::Hub;
use crate::stats::{CollectiveKind, CommStats};

/// Launches a bulk-synchronous rank-parallel region.
///
/// Each rank is an OS thread with private state; ranks communicate only through the
/// collectives on [`RankCtx`]. This mirrors how the original XtraPuLP runs one MPI task
/// per node with OpenMP threads inside it: here the "node" is a thread and intra-rank
/// parallelism is delegated to rayon by the caller.
pub struct Runtime;

impl Runtime {
    /// Run `f` on `nranks` ranks and return each rank's result, indexed by rank.
    ///
    /// `f` is shared by reference across ranks, so it can capture read-only input (for
    /// example, a globally generated edge list that each rank filters down to the part it
    /// owns). Per-rank mutable state lives inside the closure body.
    ///
    /// # Panics
    ///
    /// Panics if `nranks == 0`, or if any rank panics (the panic is propagated).
    pub fn run<F, R>(nranks: usize, f: F) -> Vec<R>
    where
        F: Fn(&RankCtx) -> R + Sync,
        R: Send,
    {
        assert!(nranks > 0, "Runtime::run requires at least one rank");
        let hub = Arc::new(Hub::new(nranks));
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nranks);
            for rank in 0..nranks {
                let hub = Arc::clone(&hub);
                handles.push(scope.spawn(move || {
                    let ctx = RankCtx::new(rank, hub);
                    f(&ctx)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

/// Handle given to each rank: identity, size, collectives and communication counters.
pub struct RankCtx {
    rank: usize,
    hub: Arc<Hub>,
    stats: CommStats,
}

impl RankCtx {
    fn new(rank: usize, hub: Arc<Hub>) -> Self {
        RankCtx {
            rank,
            hub,
            stats: CommStats::new(),
        }
    }

    /// This rank's id, in `0..nranks`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the runtime.
    pub fn nranks(&self) -> usize {
        self.hub.nranks()
    }

    /// True on rank 0, the conventional root for rooted collectives.
    pub fn is_root(&self) -> bool {
        self.rank == 0
    }

    /// Communication counters for this rank.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    // ----------------------------------------------------------------------------------
    // Collectives. All of them must be called by every rank, in the same order.
    // ----------------------------------------------------------------------------------

    /// Block until every rank reaches this call.
    pub fn barrier(&self) {
        self.stats.record_collective(CollectiveKind::Barrier);
        self.hub.barrier();
    }

    /// Broadcast `value` from `root` to every rank. Only the root's `value` is used;
    /// other ranks may pass `None`.
    pub fn broadcast<T>(&self, root: usize, value: Option<T>) -> T
    where
        T: Clone + Send + 'static,
    {
        assert!(root < self.nranks(), "broadcast root out of range");
        self.stats.record_collective(CollectiveKind::Broadcast);
        if self.rank == root {
            let value = value.expect("broadcast root must supply a value");
            self.stats.record_send(size_of::<T>() as u64);
            self.hub.put_slot(root, value);
        }
        self.hub.barrier();
        let out: T = self.hub.read_slot(root);
        self.stats.record_recv(size_of::<T>() as u64);
        self.hub.barrier();
        if self.rank == root {
            self.hub.clear_slot(root);
        }
        out
    }

    /// Gather one value from every rank on every rank, indexed by rank.
    pub fn allgather<T>(&self, value: T) -> Vec<T>
    where
        T: Clone + Send + 'static,
    {
        self.stats.record_collective(CollectiveKind::Allgather);
        self.stats.record_send(size_of::<T>() as u64);
        self.hub.put_slot(self.rank, value);
        self.hub.barrier();
        let nranks = self.nranks();
        let mut out = Vec::with_capacity(nranks);
        for r in 0..nranks {
            out.push(self.hub.read_slot::<T>(r));
        }
        self.stats
            .record_recv((nranks * size_of::<T>()) as u64);
        self.hub.barrier();
        self.hub.clear_slot(self.rank);
        out
    }

    /// Gather a variable-length contribution from every rank and concatenate them in rank
    /// order on every rank.
    pub fn allgatherv<T>(&self, values: Vec<T>) -> Vec<T>
    where
        T: Clone + Send + 'static,
    {
        self.stats.record_collective(CollectiveKind::Allgather);
        self.stats
            .record_send((values.len() * size_of::<T>()) as u64);
        self.hub.put_slot(self.rank, values);
        self.hub.barrier();
        let nranks = self.nranks();
        let mut out = Vec::new();
        for r in 0..nranks {
            self.hub.with_slot::<Vec<T>, _>(r, |v| {
                out.extend_from_slice(v);
            });
        }
        self.stats
            .record_recv((out.len() * size_of::<T>()) as u64);
        self.hub.barrier();
        self.hub.clear_slot(self.rank);
        out
    }

    /// Gather one value from every rank at `root`. Returns `Some(values)` on the root,
    /// `None` elsewhere.
    pub fn gather<T>(&self, root: usize, value: T) -> Option<Vec<T>>
    where
        T: Send + 'static,
    {
        assert!(root < self.nranks(), "gather root out of range");
        self.stats.record_collective(CollectiveKind::Gather);
        self.stats.record_send(size_of::<T>() as u64);
        self.hub.put_mail(self.rank, root, value);
        self.hub.barrier();
        let out = if self.rank == root {
            let nranks = self.nranks();
            let mut all = Vec::with_capacity(nranks);
            for src in 0..nranks {
                all.push(
                    self.hub
                        .take_mail::<T>(src, root)
                        .expect("gather: missing contribution"),
                );
            }
            self.stats
                .record_recv((nranks * size_of::<T>()) as u64);
            Some(all)
        } else {
            None
        };
        self.hub.barrier();
        out
    }

    /// Scatter one value per rank from `root`. The root passes `Some(values)` with
    /// exactly `nranks` entries; other ranks pass `None`.
    pub fn scatter<T>(&self, root: usize, values: Option<Vec<T>>) -> T
    where
        T: Send + 'static,
    {
        assert!(root < self.nranks(), "scatter root out of range");
        self.stats.record_collective(CollectiveKind::Scatter);
        if self.rank == root {
            let values = values.expect("scatter root must supply values");
            assert_eq!(
                values.len(),
                self.nranks(),
                "scatter requires exactly one value per rank"
            );
            self.stats
                .record_send((values.len() * size_of::<T>()) as u64);
            for (dst, value) in values.into_iter().enumerate() {
                self.hub.put_mail(root, dst, value);
            }
        }
        self.hub.barrier();
        let out = self
            .hub
            .take_mail::<T>(root, self.rank)
            .expect("scatter: missing value for this rank");
        self.stats.record_recv(size_of::<T>() as u64);
        self.hub.barrier();
        out
    }

    /// Personalised all-to-all exchange with exactly one element per destination.
    /// `sends[d]` is delivered to rank `d`; the result's element `s` came from rank `s`.
    pub fn alltoall<T>(&self, sends: Vec<T>) -> Vec<T>
    where
        T: Send + 'static,
    {
        assert_eq!(
            sends.len(),
            self.nranks(),
            "alltoall requires one element per destination rank"
        );
        self.stats.record_collective(CollectiveKind::Alltoall);
        self.stats
            .record_send((sends.len() * size_of::<T>()) as u64);
        for (dst, value) in sends.into_iter().enumerate() {
            self.hub.put_mail(self.rank, dst, value);
        }
        self.hub.barrier();
        let nranks = self.nranks();
        let mut out = Vec::with_capacity(nranks);
        for src in 0..nranks {
            out.push(
                self.hub
                    .take_mail::<T>(src, self.rank)
                    .expect("alltoall: missing contribution"),
            );
        }
        self.stats
            .record_recv((nranks * size_of::<T>()) as u64);
        self.hub.barrier();
        out
    }

    /// Personalised all-to-all exchange with variable-length buffers, the workhorse of
    /// XtraPuLP's `ExchangeUpdates` routine. `sends[d]` is delivered to rank `d`; the
    /// result's entry `s` is the buffer sent by rank `s`.
    pub fn alltoallv<T>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>>
    where
        T: Send + 'static,
    {
        assert_eq!(
            sends.len(),
            self.nranks(),
            "alltoallv requires one buffer per destination rank"
        );
        self.stats.record_collective(CollectiveKind::Alltoallv);
        let sent_elems: usize = sends.iter().map(Vec::len).sum();
        self.stats
            .record_send((sent_elems * size_of::<T>()) as u64);
        for (dst, buf) in sends.into_iter().enumerate() {
            self.hub.put_mail(self.rank, dst, buf);
        }
        self.hub.barrier();
        let nranks = self.nranks();
        let mut out = Vec::with_capacity(nranks);
        for src in 0..nranks {
            out.push(
                self.hub
                    .take_mail::<Vec<T>>(src, self.rank)
                    .expect("alltoallv: missing contribution"),
            );
        }
        let recv_elems: usize = out.iter().map(Vec::len).sum();
        self.stats
            .record_recv((recv_elems * size_of::<T>()) as u64);
        self.hub.barrier();
        out
    }

    /// Element-wise allreduce with a caller-supplied combine function.
    ///
    /// Every rank supplies a slice of the same length; `combine(acc, contribution)` is
    /// applied in rank order, so non-commutative reductions are deterministic.
    pub fn allreduce_with<T, F>(&self, local: &[T], combine: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&mut T, &T),
    {
        self.stats.record_collective(CollectiveKind::Allreduce);
        self.stats
            .record_send((local.len() * size_of::<T>()) as u64);
        self.hub.put_slot(self.rank, local.to_vec());
        self.hub.barrier();
        let mut acc: Vec<T> = self.hub.read_slot(0);
        for r in 1..self.nranks() {
            self.hub.with_slot::<Vec<T>, _>(r, |contrib| {
                assert_eq!(
                    acc.len(),
                    contrib.len(),
                    "allreduce requires equal-length contributions on every rank"
                );
                for (a, c) in acc.iter_mut().zip(contrib.iter()) {
                    combine(a, c);
                }
            });
        }
        self.stats
            .record_recv((acc.len() * size_of::<T>()) as u64);
        self.hub.barrier();
        self.hub.clear_slot(self.rank);
        acc
    }

    /// Element-wise sum allreduce over `u64`.
    pub fn allreduce_sum_u64(&self, local: &[u64]) -> Vec<u64> {
        self.allreduce_with(local, |a, c| *a += *c)
    }

    /// Element-wise sum allreduce over `i64`.
    pub fn allreduce_sum_i64(&self, local: &[i64]) -> Vec<i64> {
        self.allreduce_with(local, |a, c| *a += *c)
    }

    /// Element-wise sum allreduce over `f64`.
    pub fn allreduce_sum_f64(&self, local: &[f64]) -> Vec<f64> {
        self.allreduce_with(local, |a, c| *a += *c)
    }

    /// Element-wise max allreduce over `u64`.
    pub fn allreduce_max_u64(&self, local: &[u64]) -> Vec<u64> {
        self.allreduce_with(local, |a, c| *a = (*a).max(*c))
    }

    /// Element-wise max allreduce over `f64`.
    pub fn allreduce_max_f64(&self, local: &[f64]) -> Vec<f64> {
        self.allreduce_with(local, |a, c| *a = a.max(*c))
    }

    /// Element-wise min allreduce over `u64`.
    pub fn allreduce_min_u64(&self, local: &[u64]) -> Vec<u64> {
        self.allreduce_with(local, |a, c| *a = (*a).min(*c))
    }

    /// Exclusive prefix sum across ranks: rank `r` receives the sum of the values supplied
    /// by ranks `0..r` (rank 0 receives 0).
    pub fn exscan_sum_u64(&self, value: u64) -> u64 {
        let all = self.allgather(value);
        all[..self.rank].iter().sum()
    }

    /// Sum of one value per rank, available on every rank.
    pub fn allreduce_scalar_sum_u64(&self, value: u64) -> u64 {
        self.allreduce_sum_u64(&[value])[0]
    }

    /// Max of one value per rank, available on every rank.
    pub fn allreduce_scalar_max_u64(&self, value: u64) -> u64 {
        self.allreduce_max_u64(&[value])[0]
    }

    /// Max of one `f64` per rank, available on every rank.
    pub fn allreduce_scalar_max_f64(&self, value: f64) -> f64 {
        self.allreduce_max_f64(&[value])[0]
    }
}
