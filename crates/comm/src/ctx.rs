//! The reusable rank runtime ([`Runtime`]) and the per-rank handle ([`RankCtx`])
//! exposing MPI-style collectives.
//!
//! [`Runtime::new`] spawns `nranks` long-lived worker threads once;
//! [`Runtime::execute`] then runs any number of bulk-synchronous jobs on them,
//! amortising thread spawn/teardown across jobs the way an MPI job reuses its
//! task set across collective phases. [`Runtime::run`] remains as the one-shot
//! convenience wrapper (spawn, execute once, tear down).

use std::any::Any;
use std::mem::size_of;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::hub::Hub;
use crate::stats::{CollectiveKind, CommStats};

/// Type-erased return value of one rank's job.
type ErasedResult = Box<dyn Any + Send>;

/// A borrowed, type-erased job closure shipped to the worker threads.
///
/// The pointee lives in [`Runtime::execute`]'s stack frame; the `'static`
/// lifetime is a lie told via `transmute`, made sound because `execute` blocks
/// until every worker has reported completion of the job, so the reference
/// never outlives its referent (the same guarantee scoped threads provide,
/// made manual because the workers are long-lived).
#[derive(Clone, Copy)]
struct Job {
    f: &'static (dyn Fn(&RankCtx) -> ErasedResult + Sync),
}

/// A persistent pool of rank threads executing bulk-synchronous jobs.
///
/// Each rank is an OS thread with private state; ranks communicate only through the
/// collectives on [`RankCtx`]. This mirrors how the original XtraPuLP runs one MPI task
/// per node with OpenMP threads inside it: here the "node" is a thread and intra-rank
/// parallelism is delegated to rayon by the caller.
///
/// The rank threads are spawned once in [`Runtime::new`] and live until the
/// runtime is dropped, so back-to-back jobs (a partitioning service handling
/// many graphs, a bench loop, a pipeline of partition-then-analyse jobs) pay
/// the spawn cost once. Every job gets a fresh [`RankCtx`] (and therefore
/// fresh [`CommStats`]); the rendezvous state ([`Hub`]) is reused, which is
/// safe because every collective leaves its slots empty on completion.
pub struct Runtime {
    nranks: usize,
    job_txs: Vec<Sender<Job>>,
    results_rx: Receiver<(usize, std::thread::Result<ErasedResult>)>,
    workers: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Spawn a runtime of `nranks` persistent rank threads.
    ///
    /// # Panics
    ///
    /// Panics if `nranks == 0`. (Request-path callers should validate rank
    /// counts up front and surface a typed error; see `xtrapulp-api`.)
    pub fn new(nranks: usize) -> Runtime {
        assert!(nranks > 0, "a Runtime requires at least one rank");
        let hub = Arc::new(Hub::new(nranks));
        let (results_tx, results_rx) = channel();
        let mut job_txs = Vec::with_capacity(nranks);
        let mut workers = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            let (job_tx, job_rx) = channel::<Job>();
            let hub = Arc::clone(&hub);
            let results_tx = results_tx.clone();
            job_txs.push(job_tx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("xtrapulp-rank-{rank}"))
                    .spawn(move || Self::worker_main(rank, hub, job_rx, results_tx))
                    .expect("failed to spawn rank thread"),
            );
        }
        Runtime {
            nranks,
            job_txs,
            results_rx,
            workers,
        }
    }

    /// Number of ranks in the runtime.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Execute `f` collectively on every rank and return each rank's result,
    /// indexed by rank.
    ///
    /// `f` is shared by reference across ranks, so it can capture read-only input (for
    /// example, a globally generated edge list that each rank filters down to the part it
    /// owns). Per-rank mutable state lives inside the closure body.
    ///
    /// Takes `&mut self` because a runtime executes one job at a time: the
    /// rank threads and the hub are a single collective context, exactly like
    /// an MPI communicator.
    ///
    /// # Panics
    ///
    /// If any rank's closure panics, the panic is re-raised on the caller once
    /// every rank has finished. If a rank panics *mid-collective* the
    /// remaining ranks deadlock in the abandoned collective, exactly as an MPI
    /// job would hang — don't let request-path code panic inside a job.
    pub fn execute<F, R>(&mut self, f: F) -> Vec<R>
    where
        F: Fn(&RankCtx) -> R + Sync,
        R: Send + 'static,
    {
        let wrapper = |ctx: &RankCtx| -> ErasedResult { Box::new(f(ctx)) };
        let erased: &(dyn Fn(&RankCtx) -> ErasedResult + Sync) = &wrapper;
        // SAFETY: `Job` is only dereferenced by workers between the sends below
        // and the corresponding completion messages, all of which this function
        // waits for before returning; the closure therefore outlives every use
        // of the forged `'static` reference.
        let job = Job {
            f: unsafe {
                std::mem::transmute::<
                    &(dyn Fn(&RankCtx) -> ErasedResult + Sync),
                    &'static (dyn Fn(&RankCtx) -> ErasedResult + Sync),
                >(erased)
            },
        };
        for tx in &self.job_txs {
            tx.send(job).expect("rank thread exited unexpectedly");
        }
        let mut slots: Vec<Option<std::thread::Result<ErasedResult>>> = Vec::new();
        slots.resize_with(self.nranks, || None);
        for _ in 0..self.nranks {
            let (rank, outcome) = self
                .results_rx
                .recv()
                .expect("rank thread exited unexpectedly");
            slots[rank] = Some(outcome);
        }
        // Every rank is done with the job; the borrow of `f` has ended.
        let mut results = Vec::with_capacity(self.nranks);
        let mut panic_payload = None;
        for slot in slots {
            match slot.expect("every rank reports exactly once") {
                Ok(boxed) => results.push(
                    *boxed
                        .downcast::<R>()
                        .expect("job result type mismatch between ranks"),
                ),
                Err(payload) => panic_payload = Some(payload),
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        results
    }

    /// Run `f` on a fresh one-shot runtime of `nranks` ranks and return each
    /// rank's result, indexed by rank. Convenience wrapper over
    /// [`Runtime::new`] + [`Runtime::execute`]; for repeated jobs, keep a
    /// runtime (or an `xtrapulp-api` `Session`) alive instead.
    ///
    /// # Panics
    ///
    /// Panics if `nranks == 0`, or if any rank panics (the panic is propagated).
    pub fn run<F, R>(nranks: usize, f: F) -> Vec<R>
    where
        F: Fn(&RankCtx) -> R + Sync,
        R: Send + 'static,
    {
        Runtime::new(nranks).execute(f)
    }

    fn worker_main(
        rank: usize,
        hub: Arc<Hub>,
        job_rx: Receiver<Job>,
        results_tx: Sender<(usize, std::thread::Result<ErasedResult>)>,
    ) {
        // Exits when the runtime drops its sender.
        while let Ok(job) = job_rx.recv() {
            let ctx = RankCtx::new(rank, Arc::clone(&hub));
            let f = job.f;
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| f(&ctx)));
            if results_tx.send((rank, outcome)).is_err() {
                return;
            }
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Closing the job channels tells every worker to exit its loop.
        self.job_txs.clear();
        for handle in self.workers.drain(..) {
            // A worker that panicked outside a job (impossible today) would
            // surface here; swallow it rather than double-panic in drop.
            let _ = handle.join();
        }
    }
}

/// Handle given to each rank: identity, size, collectives and communication counters.
pub struct RankCtx {
    rank: usize,
    hub: Arc<Hub>,
    stats: CommStats,
}

impl RankCtx {
    fn new(rank: usize, hub: Arc<Hub>) -> Self {
        RankCtx {
            rank,
            hub,
            stats: CommStats::new(),
        }
    }

    /// This rank's id, in `0..nranks`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the runtime.
    pub fn nranks(&self) -> usize {
        self.hub.nranks()
    }

    /// True on rank 0, the conventional root for rooted collectives.
    pub fn is_root(&self) -> bool {
        self.rank == 0
    }

    /// Communication counters for this rank.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    // ----------------------------------------------------------------------------------
    // Collectives. All of them must be called by every rank, in the same order.
    // ----------------------------------------------------------------------------------

    /// Block until every rank reaches this call.
    pub fn barrier(&self) {
        self.stats.record_collective(CollectiveKind::Barrier);
        self.hub.barrier();
    }

    /// Broadcast `value` from `root` to every rank. Only the root's `value` is used;
    /// other ranks may pass `None`.
    pub fn broadcast<T>(&self, root: usize, value: Option<T>) -> T
    where
        T: Clone + Send + 'static,
    {
        assert!(root < self.nranks(), "broadcast root out of range");
        self.stats.record_collective(CollectiveKind::Broadcast);
        if self.rank == root {
            let value = value.expect("broadcast root must supply a value");
            self.stats.record_send(size_of::<T>() as u64);
            self.hub.put_slot(root, value);
        }
        self.hub.barrier();
        let out: T = self.hub.read_slot(root);
        self.stats.record_recv(size_of::<T>() as u64);
        self.hub.barrier();
        if self.rank == root {
            self.hub.clear_slot(root);
        }
        out
    }

    /// Gather one value from every rank on every rank, indexed by rank.
    pub fn allgather<T>(&self, value: T) -> Vec<T>
    where
        T: Clone + Send + 'static,
    {
        self.stats.record_collective(CollectiveKind::Allgather);
        self.stats.record_send(size_of::<T>() as u64);
        self.hub.put_slot(self.rank, value);
        self.hub.barrier();
        let nranks = self.nranks();
        let mut out = Vec::with_capacity(nranks);
        for r in 0..nranks {
            out.push(self.hub.read_slot::<T>(r));
        }
        self.stats.record_recv((nranks * size_of::<T>()) as u64);
        self.hub.barrier();
        self.hub.clear_slot(self.rank);
        out
    }

    /// Gather a variable-length contribution from every rank and concatenate them in rank
    /// order on every rank.
    pub fn allgatherv<T>(&self, values: Vec<T>) -> Vec<T>
    where
        T: Clone + Send + 'static,
    {
        self.stats.record_collective(CollectiveKind::Allgather);
        self.stats
            .record_send((values.len() * size_of::<T>()) as u64);
        self.hub.put_slot(self.rank, values);
        self.hub.barrier();
        let nranks = self.nranks();
        let mut out = Vec::new();
        for r in 0..nranks {
            self.hub.with_slot::<Vec<T>, _>(r, |v| {
                out.extend_from_slice(v);
            });
        }
        self.stats.record_recv((out.len() * size_of::<T>()) as u64);
        self.hub.barrier();
        self.hub.clear_slot(self.rank);
        out
    }

    /// Gather one value from every rank at `root`. Returns `Some(values)` on the root,
    /// `None` elsewhere.
    pub fn gather<T>(&self, root: usize, value: T) -> Option<Vec<T>>
    where
        T: Send + 'static,
    {
        assert!(root < self.nranks(), "gather root out of range");
        self.stats.record_collective(CollectiveKind::Gather);
        self.stats.record_send(size_of::<T>() as u64);
        self.hub.put_mail(self.rank, root, value);
        self.hub.barrier();
        let out = if self.rank == root {
            let nranks = self.nranks();
            let mut all = Vec::with_capacity(nranks);
            for src in 0..nranks {
                all.push(
                    self.hub
                        .take_mail::<T>(src, root)
                        .expect("gather: missing contribution"),
                );
            }
            self.stats.record_recv((nranks * size_of::<T>()) as u64);
            Some(all)
        } else {
            None
        };
        self.hub.barrier();
        out
    }

    /// Scatter one value per rank from `root`. The root passes `Some(values)` with
    /// exactly `nranks` entries; other ranks pass `None`.
    pub fn scatter<T>(&self, root: usize, values: Option<Vec<T>>) -> T
    where
        T: Send + 'static,
    {
        assert!(root < self.nranks(), "scatter root out of range");
        self.stats.record_collective(CollectiveKind::Scatter);
        if self.rank == root {
            let values = values.expect("scatter root must supply values");
            assert_eq!(
                values.len(),
                self.nranks(),
                "scatter requires exactly one value per rank"
            );
            self.stats
                .record_send((values.len() * size_of::<T>()) as u64);
            for (dst, value) in values.into_iter().enumerate() {
                self.hub.put_mail(root, dst, value);
            }
        }
        self.hub.barrier();
        let out = self
            .hub
            .take_mail::<T>(root, self.rank)
            .expect("scatter: missing value for this rank");
        self.stats.record_recv(size_of::<T>() as u64);
        self.hub.barrier();
        out
    }

    /// Personalised all-to-all exchange with exactly one element per destination.
    /// `sends[d]` is delivered to rank `d`; the result's element `s` came from rank `s`.
    pub fn alltoall<T>(&self, sends: Vec<T>) -> Vec<T>
    where
        T: Send + 'static,
    {
        assert_eq!(
            sends.len(),
            self.nranks(),
            "alltoall requires one element per destination rank"
        );
        self.stats.record_collective(CollectiveKind::Alltoall);
        self.stats
            .record_send((sends.len() * size_of::<T>()) as u64);
        for (dst, value) in sends.into_iter().enumerate() {
            self.hub.put_mail(self.rank, dst, value);
        }
        self.hub.barrier();
        let nranks = self.nranks();
        let mut out = Vec::with_capacity(nranks);
        for src in 0..nranks {
            out.push(
                self.hub
                    .take_mail::<T>(src, self.rank)
                    .expect("alltoall: missing contribution"),
            );
        }
        self.stats.record_recv((nranks * size_of::<T>()) as u64);
        self.hub.barrier();
        out
    }

    /// Personalised all-to-all exchange with variable-length buffers, the workhorse of
    /// XtraPuLP's `ExchangeUpdates` routine. `sends[d]` is delivered to rank `d`; the
    /// result's entry `s` is the buffer sent by rank `s`.
    pub fn alltoallv<T>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>>
    where
        T: Send + 'static,
    {
        assert_eq!(
            sends.len(),
            self.nranks(),
            "alltoallv requires one buffer per destination rank"
        );
        self.stats.record_collective(CollectiveKind::Alltoallv);
        let sent_elems: usize = sends.iter().map(Vec::len).sum();
        self.stats.record_send((sent_elems * size_of::<T>()) as u64);
        for (dst, buf) in sends.into_iter().enumerate() {
            self.hub.put_mail(self.rank, dst, buf);
        }
        self.hub.barrier();
        let nranks = self.nranks();
        let mut out = Vec::with_capacity(nranks);
        for src in 0..nranks {
            out.push(
                self.hub
                    .take_mail::<Vec<T>>(src, self.rank)
                    .expect("alltoallv: missing contribution"),
            );
        }
        let recv_elems: usize = out.iter().map(Vec::len).sum();
        self.stats.record_recv((recv_elems * size_of::<T>()) as u64);
        self.hub.barrier();
        out
    }

    /// Element-wise allreduce with a caller-supplied combine function.
    ///
    /// Every rank supplies a slice of the same length; `combine(acc, contribution)` is
    /// applied in rank order, so non-commutative reductions are deterministic.
    pub fn allreduce_with<T, F>(&self, local: &[T], combine: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&mut T, &T),
    {
        self.stats.record_collective(CollectiveKind::Allreduce);
        self.stats.record_send(std::mem::size_of_val(local) as u64);
        self.hub.put_slot(self.rank, local.to_vec());
        self.hub.barrier();
        let mut acc: Vec<T> = self.hub.read_slot(0);
        for r in 1..self.nranks() {
            self.hub.with_slot::<Vec<T>, _>(r, |contrib| {
                assert_eq!(
                    acc.len(),
                    contrib.len(),
                    "allreduce requires equal-length contributions on every rank"
                );
                for (a, c) in acc.iter_mut().zip(contrib.iter()) {
                    combine(a, c);
                }
            });
        }
        self.stats.record_recv((acc.len() * size_of::<T>()) as u64);
        self.hub.barrier();
        self.hub.clear_slot(self.rank);
        acc
    }

    /// Element-wise sum allreduce over `u64`.
    pub fn allreduce_sum_u64(&self, local: &[u64]) -> Vec<u64> {
        self.allreduce_with(local, |a, c| *a += *c)
    }

    /// Element-wise sum allreduce over `i64`.
    pub fn allreduce_sum_i64(&self, local: &[i64]) -> Vec<i64> {
        self.allreduce_with(local, |a, c| *a += *c)
    }

    /// Element-wise sum allreduce over `f64`.
    pub fn allreduce_sum_f64(&self, local: &[f64]) -> Vec<f64> {
        self.allreduce_with(local, |a, c| *a += *c)
    }

    /// Element-wise max allreduce over `u64`.
    pub fn allreduce_max_u64(&self, local: &[u64]) -> Vec<u64> {
        self.allreduce_with(local, |a, c| *a = (*a).max(*c))
    }

    /// Element-wise max allreduce over `f64`.
    pub fn allreduce_max_f64(&self, local: &[f64]) -> Vec<f64> {
        self.allreduce_with(local, |a, c| *a = a.max(*c))
    }

    /// Element-wise min allreduce over `u64`.
    pub fn allreduce_min_u64(&self, local: &[u64]) -> Vec<u64> {
        self.allreduce_with(local, |a, c| *a = (*a).min(*c))
    }

    /// Exclusive prefix sum across ranks: rank `r` receives the sum of the values supplied
    /// by ranks `0..r` (rank 0 receives 0).
    pub fn exscan_sum_u64(&self, value: u64) -> u64 {
        let all = self.allgather(value);
        all[..self.rank].iter().sum()
    }

    /// Sum of one value per rank, available on every rank.
    pub fn allreduce_scalar_sum_u64(&self, value: u64) -> u64 {
        self.allreduce_sum_u64(&[value])[0]
    }

    /// Max of one value per rank, available on every rank.
    pub fn allreduce_scalar_max_u64(&self, value: u64) -> u64 {
        self.allreduce_max_u64(&[value])[0]
    }

    /// Max of one `f64` per rank, available on every rank.
    pub fn allreduce_scalar_max_f64(&self, value: f64) -> f64 {
        self.allreduce_max_f64(&[value])[0]
    }
}
