//! The reusable rank runtime ([`Runtime`]) and the per-rank handle ([`RankCtx`])
//! exposing MPI-style collectives.
//!
//! [`Runtime::new`] spawns `nranks` long-lived worker threads once;
//! [`Runtime::execute`] then runs any number of bulk-synchronous jobs on them,
//! amortising thread spawn/teardown across jobs the way an MPI job reuses its
//! task set across collective phases. [`Runtime::run`] remains as the one-shot
//! convenience wrapper (spawn, execute once, tear down).
//!
//! Every collective is written against the [`Transport`] abstraction: a
//! rank-addressed exchange of framed messages with FIFO ordering per ordered
//! rank pair. Because every rank issues the same collectives in the same order
//! (the usage contract), the k-th frame rank `s` sends to rank `d` always
//! matches the k-th receive rank `d` posts from `s` — so each collective below
//! is just "send to the ranks that need my data, then receive in rank order",
//! with no slot protocol or barrier framing.
//!
//! [`Runtime::new`] builds the in-process backend (ranks are threads, frames
//! move as typed boxes, nothing is serialised). [`Runtime::with_transport`]
//! accepts any [`Transport`] — notably [`TcpTransport`](crate::TcpTransport),
//! where this process hosts one rank of a multi-process job and frames are
//! length-prefixed byte streams.

use std::any::Any;
use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xtrapulp_obs as obs;
use xtrapulp_obs::{FlightKind, Histogram};

use crate::error::CommError;
use crate::stats::{CollectiveKind, CommStats};
use crate::transport::{
    Frame, InProcFabric, Transport, TransportError, WireElem, WireMessage, FRAME_HEADER_BYTES,
};
use crate::watchdog::Stall;

/// Type-erased return value of one rank's job.
type ErasedResult = Box<dyn Any + Send>;

/// What the runtime ships to its worker threads.
#[derive(Clone, Copy)]
enum Job {
    /// A borrowed, type-erased job closure.
    ///
    /// The pointee lives in [`Runtime::execute`]'s stack frame; the `'static`
    /// lifetime is a lie told via `transmute`, made sound because `execute`
    /// blocks until every worker has reported completion of the job, so the
    /// reference never outlives its referent (the same guarantee scoped
    /// threads provide, made manual because the workers are long-lived).
    Run {
        f: &'static (dyn Fn(&RankCtx) -> ErasedResult + Sync),
        /// The runtime's stall deadline, sampled at dispatch so a mid-job
        /// change never affects a running job.
        wd_deadline: Option<Duration>,
    },
    /// Recover this worker's transport in place (see [`Transport::recover`]).
    /// Dispatched to every local rank in parallel, because recovery is itself
    /// a collective rendezvous: with several local ranks, each must be mid-
    /// recovery at once for any to complete.
    Recover,
}

/// How a [`Runtime::try_execute_recoverable`] job finished.
#[derive(Debug)]
pub enum ExecOutcome<R> {
    /// Every rank completed on the first attempt.
    Completed(Vec<R>),
    /// The job failed at least once, membership was restored, and a retry ran
    /// to completion.
    Recovered {
        /// Each local rank's result, in local-rank order.
        results: Vec<R>,
        /// Successful mesh recoveries performed along the way.
        recoveries: u32,
    },
}

impl<R> ExecOutcome<R> {
    /// The per-rank results, however the job got there.
    pub fn into_results(self) -> Vec<R> {
        match self {
            ExecOutcome::Completed(results) => results,
            ExecOutcome::Recovered { results, .. } => results,
        }
    }

    /// Successful recoveries performed (0 for [`ExecOutcome::Completed`]).
    pub fn recoveries(&self) -> u32 {
        match self {
            ExecOutcome::Completed(_) => 0,
            ExecOutcome::Recovered { recoveries, .. } => *recoveries,
        }
    }
}

/// A persistent pool of rank threads executing bulk-synchronous jobs.
///
/// Each local rank is an OS thread with private state; ranks communicate only
/// through the collectives on [`RankCtx`]. This mirrors how the original
/// XtraPuLP runs one MPI task per node with OpenMP threads inside it: here the
/// "node" is a thread and intra-rank parallelism is delegated to rayon by the
/// caller.
///
/// A runtime hosts the ranks whose transports it was given. [`Runtime::new`]
/// hosts *all* ranks of an in-process job; [`Runtime::with_transport`] hosts
/// one rank of a multi-process job, with the remaining ranks living in other
/// processes behind the transport. The rank threads are spawned once and live
/// until the runtime is dropped, so back-to-back jobs pay the spawn cost once.
/// Every job gets a fresh [`RankCtx`] (and therefore fresh [`CommStats`]).
pub struct Runtime {
    nranks: usize,
    local_ranks: Vec<usize>,
    job_txs: Vec<Sender<Job>>,
    results_rx: Receiver<(usize, std::thread::Result<ErasedResult>)>,
    workers: Vec<JoinHandle<()>>,
    /// Stall-watchdog deadline applied to subsequently dispatched jobs
    /// (`None` = watchdog disabled, the default).
    wd_deadline: Option<Duration>,
}

impl Runtime {
    /// Spawn a runtime of `nranks` persistent in-process rank threads.
    ///
    /// # Panics
    ///
    /// Panics if `nranks == 0`; use [`Runtime::try_new`] on request paths that
    /// need a typed error instead.
    pub fn new(nranks: usize) -> Runtime {
        Runtime::try_new(nranks).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Spawn a runtime of `nranks` persistent in-process rank threads,
    /// returning a typed [`CommError`] on invalid rank counts or thread-spawn
    /// failure instead of panicking.
    pub fn try_new(nranks: usize) -> Result<Runtime, CommError> {
        if nranks == 0 {
            return Err(CommError::ZeroRanks);
        }
        let transports: Vec<Box<dyn Transport>> = InProcFabric::create(nranks)
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn Transport>)
            .collect();
        Runtime::from_transports(transports)
    }

    /// Host one rank of a (typically multi-process) job over an established
    /// transport. The other `nranks - 1` ranks live behind the transport, in
    /// other processes.
    pub fn with_transport(transport: Box<dyn Transport>) -> Result<Runtime, CommError> {
        Runtime::from_transports(vec![transport])
    }

    /// Host every rank whose transport is supplied. All transports must agree
    /// on the job's rank count; each claims a distinct rank within it.
    pub fn from_transports(transports: Vec<Box<dyn Transport>>) -> Result<Runtime, CommError> {
        if transports.is_empty() {
            return Err(CommError::ZeroRanks);
        }
        let nranks = transports[0].nranks();
        if nranks == 0 {
            return Err(CommError::ZeroRanks);
        }
        for t in &transports {
            if t.nranks() != nranks {
                return Err(CommError::RankCountMismatch {
                    expected: nranks,
                    got: t.nranks(),
                });
            }
            if t.rank() >= nranks {
                return Err(CommError::RankOutOfRange {
                    rank: t.rank(),
                    nranks,
                });
            }
        }
        let (results_tx, results_rx) = channel();
        let mut local_ranks = Vec::with_capacity(transports.len());
        let mut job_txs = Vec::with_capacity(transports.len());
        let mut workers = Vec::with_capacity(transports.len());
        for (local, transport) in transports.into_iter().enumerate() {
            let rank = transport.rank();
            let (job_tx, job_rx) = channel::<Job>();
            let results_tx = results_tx.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("xtrapulp-rank-{rank}"))
                .spawn(move || Self::worker_main(transport, job_rx, results_tx, local));
            match spawned {
                Ok(handle) => {
                    local_ranks.push(rank);
                    job_txs.push(job_tx);
                    workers.push(handle);
                }
                Err(e) => {
                    // Unwind the partial pool before reporting.
                    drop(job_tx);
                    drop(job_txs);
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(CommError::Spawn {
                        detail: e.to_string(),
                    });
                }
            }
        }
        Ok(Runtime {
            nranks,
            local_ranks,
            job_txs,
            results_rx,
            workers,
            wd_deadline: None,
        })
    }

    /// Number of ranks in the job, across all participating processes.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Arm (or with `None`, disarm) the stall watchdog for jobs dispatched
    /// after this call: a rank whose next transport operation makes no
    /// progress for `deadline` trips with [`CommError::Stalled`], records a
    /// flight-recorder watchdog event naming the collective, rank, and
    /// frame, and dumps a post-mortem file. Disabled by default. See
    /// [`crate::watchdog`].
    pub fn set_watchdog_deadline(&mut self, deadline: Option<Duration>) {
        self.wd_deadline = deadline;
    }

    /// The currently configured stall deadline, if any.
    pub fn watchdog_deadline(&self) -> Option<Duration> {
        self.wd_deadline
    }

    /// The ranks hosted by this runtime (all of them for [`Runtime::new`],
    /// usually one for [`Runtime::with_transport`]).
    pub fn local_ranks(&self) -> &[usize] {
        &self.local_ranks
    }

    /// True when some ranks of the job live in other processes.
    pub fn is_distributed(&self) -> bool {
        self.local_ranks.len() != self.nranks
    }

    /// Execute `f` collectively on every locally hosted rank and return each
    /// local rank's result, in [`Runtime::local_ranks`] order (which is rank
    /// order `0..nranks` for an in-process runtime).
    ///
    /// `f` is shared by reference across ranks, so it can capture read-only input (for
    /// example, a globally generated edge list that each rank filters down to the part it
    /// owns). Per-rank mutable state lives inside the closure body.
    ///
    /// Takes `&mut self` because a runtime executes one job at a time: the
    /// rank threads and the transport are a single collective context, exactly
    /// like an MPI communicator.
    ///
    /// # Panics
    ///
    /// If any rank's closure panics, the panic is re-raised on the caller once
    /// every local rank has finished — including transport failures, which
    /// unwind the job as [`TransportError`] payloads. Use
    /// [`Runtime::try_execute`] to receive those as typed errors instead. If a
    /// rank panics *mid-collective* the remaining in-process ranks deadlock in
    /// the abandoned collective, exactly as an MPI job would hang — don't let
    /// request-path code panic inside a job.
    pub fn execute<F, R>(&mut self, f: F) -> Vec<R>
    where
        F: Fn(&RankCtx) -> R + Sync,
        R: Send + 'static,
    {
        let wrapper = |ctx: &RankCtx| -> ErasedResult { Box::new(f(ctx)) };
        let mut results = Vec::with_capacity(self.job_txs.len());
        let mut panic_payload = None;
        for outcome in self.dispatch(&wrapper) {
            match outcome {
                Ok(boxed) => results.push(
                    *boxed
                        .downcast::<R>()
                        .expect("job result type mismatch between ranks"),
                ),
                Err(payload) => panic_payload = Some(payload),
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        results
    }

    /// Like [`Runtime::execute`], but transport failures (peer death, receive
    /// timeout, undecodable frames) surface as [`CommError::Transport`]
    /// instead of unwinding the caller. Non-transport panics still propagate.
    pub fn try_execute<F, R>(&mut self, f: F) -> Result<Vec<R>, CommError>
    where
        F: Fn(&RankCtx) -> R + Sync,
        R: Send + 'static,
    {
        let wrapper = |ctx: &RankCtx| -> ErasedResult { Box::new(f(ctx)) };
        let mut results = Vec::with_capacity(self.job_txs.len());
        let mut transport_error: Option<TransportError> = None;
        let mut other_panic = None;
        let mut stall: Option<Stall> = None;
        for outcome in self.dispatch(&wrapper) {
            match outcome {
                Ok(boxed) => results.push(
                    *boxed
                        .downcast::<R>()
                        .expect("job result type mismatch between ranks"),
                ),
                Err(payload) => match payload.downcast::<Stall>() {
                    Ok(s) => stall = Some(*s),
                    Err(payload) => match payload.downcast::<TransportError>() {
                        Ok(err) => transport_error = Some(*err),
                        Err(payload) => other_panic = Some(payload),
                    },
                },
            }
        }
        // A stall is the most specific diagnosis: when one rank trips the
        // watchdog, its peers often fail with secondary transport timeouts —
        // report the stall, not the symptom.
        if let Some(s) = stall {
            return Err(CommError::Stalled {
                collective: s.collective,
                rank: s.rank,
                frame: s.frame,
                waited_ms: s.waited_ms,
            });
        }
        if let Some(err) = transport_error {
            return Err(CommError::Transport(err));
        }
        if let Some(payload) = other_panic {
            std::panic::resume_unwind(payload);
        }
        Ok(results)
    }

    /// Like [`Runtime::try_execute`], but a transport failure triggers a
    /// membership recovery ([`Runtime::recover`]) followed by a from-scratch
    /// retry of `f`, up to `max_recoveries` times. Jobs run this way must be
    /// idempotent — deterministic pure functions of their captured input, as
    /// every partitioning job here is.
    ///
    /// Returns a typed [`ExecOutcome`] distinguishing a clean first-attempt
    /// completion from a completion that needed recoveries. When attempts are
    /// exhausted, or a recovery itself fails, the job is abandoned with
    /// [`CommError::Aborted`] carrying the last transport failure.
    pub fn try_execute_recoverable<F, R>(
        &mut self,
        f: F,
        max_recoveries: u32,
    ) -> Result<ExecOutcome<R>, CommError>
    where
        F: Fn(&RankCtx) -> R + Sync,
        R: Send + 'static,
    {
        let mut recoveries = 0u32;
        loop {
            match self.try_execute(&f) {
                Ok(results) => {
                    return Ok(if recoveries == 0 {
                        ExecOutcome::Completed(results)
                    } else {
                        ExecOutcome::Recovered {
                            results,
                            recoveries,
                        }
                    })
                }
                Err(CommError::Transport(err)) => {
                    if recoveries >= max_recoveries {
                        abort_postmortem(recoveries);
                        return Err(CommError::Aborted {
                            recoveries,
                            last: err,
                        });
                    }
                    if let Err(e) = self.recover() {
                        let last = match e {
                            CommError::Transport(t) => t,
                            other => return Err(other),
                        };
                        abort_postmortem(recoveries);
                        return Err(CommError::Aborted { recoveries, last });
                    }
                    recoveries += 1;
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Restore the job's membership after a transport failure: every locally
    /// hosted rank recovers its transport (see [`Transport::recover`]), in
    /// parallel — recovery is itself a collective rendezvous, so with several
    /// local ranks each must be mid-recovery at once for any to complete.
    ///
    /// On success the next job starts on a fresh mesh with sticky per-peer
    /// death cleared. Fails typed with the first rank's recovery error
    /// otherwise.
    pub fn recover(&mut self) -> Result<(), CommError> {
        let mut first: Option<TransportError> = None;
        for outcome in self.dispatch_job(Job::Recover) {
            match outcome {
                Ok(boxed) => {
                    let res = *boxed
                        .downcast::<Result<(), TransportError>>()
                        .expect("recover jobs report a transport result");
                    if let Err(e) = res {
                        first.get_or_insert(e);
                    }
                }
                Err(payload) => match payload.downcast::<TransportError>() {
                    Ok(err) => {
                        first.get_or_insert(*err);
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                },
            }
        }
        match first {
            Some(err) => Err(CommError::Transport(err)),
            None => {
                runtime_recoveries_counter().inc();
                obs::flight::record(
                    FlightKind::Recovery,
                    "recovered",
                    runtime_recoveries_counter().get(),
                    0,
                );
                Ok(())
            }
        }
    }

    /// Ship a job closure to every local rank and collect each rank's
    /// outcome, in local-rank order.
    fn dispatch(
        &mut self,
        erased: &(dyn Fn(&RankCtx) -> ErasedResult + Sync),
    ) -> Vec<std::thread::Result<ErasedResult>> {
        let job = Job::Run {
            // SAFETY: `Job::Run` is only dereferenced by workers between the
            // sends inside `dispatch_job` and the corresponding completion
            // messages, all of which `dispatch_job` waits for before
            // returning; the closure therefore outlives every use of the
            // forged `'static` reference.
            f: unsafe {
                std::mem::transmute::<
                    &(dyn Fn(&RankCtx) -> ErasedResult + Sync),
                    &'static (dyn Fn(&RankCtx) -> ErasedResult + Sync),
                >(erased)
            },
            wd_deadline: self.wd_deadline,
        };
        self.dispatch_job(job)
    }

    /// Ship `job` to every local rank and collect each rank's outcome, in
    /// local-rank order.
    fn dispatch_job(&mut self, job: Job) -> Vec<std::thread::Result<ErasedResult>> {
        for tx in &self.job_txs {
            tx.send(job).expect("rank thread exited unexpectedly");
        }
        let locals = self.job_txs.len();
        let mut slots: Vec<Option<std::thread::Result<ErasedResult>>> = Vec::new();
        slots.resize_with(locals, || None);
        for _ in 0..locals {
            let (local, outcome) = self
                .results_rx
                .recv()
                .expect("rank thread exited unexpectedly");
            slots[local] = Some(outcome);
        }
        // Every local rank is done with the job; the borrow of `erased` has ended.
        slots
            .into_iter()
            .map(|slot| slot.expect("every rank reports exactly once"))
            .collect()
    }

    /// Run `f` on a fresh one-shot in-process runtime of `nranks` ranks and
    /// return each rank's result, indexed by rank. Convenience wrapper over
    /// [`Runtime::new`] + [`Runtime::execute`]; for repeated jobs, keep a
    /// runtime (or an `xtrapulp-api` `Session`) alive instead.
    ///
    /// # Panics
    ///
    /// Panics if `nranks == 0`, or if any rank panics (the panic is propagated).
    pub fn run<F, R>(nranks: usize, f: F) -> Vec<R>
    where
        F: Fn(&RankCtx) -> R + Sync,
        R: Send + 'static,
    {
        Runtime::new(nranks).execute(f)
    }

    /// Gather every rank's trace buffers at rank 0 and write one merged
    /// chrome://tracing Trace Event Format file there.
    ///
    /// A collective operation: every process hosting ranks of the job must
    /// call it (the launcher does, after its partition jobs). Within each
    /// process the lowest local rank drains and ships the whole process's
    /// buffers — rank threads, serve workers, analytics consumers alike —
    /// with its transport clock offset applied, so TCP ranks land on rank 0's
    /// timeline. Returns `true` iff this process hosted rank 0 and wrote
    /// `path`.
    ///
    /// Tracing is suspended for the duration so the gather does not trace
    /// itself; the previous enable state is restored before returning.
    pub fn export_trace(&mut self, path: &std::path::Path) -> Result<bool, CommError> {
        let was_enabled = obs::trace::enabled();
        obs::set_enabled(false);
        let leader = self.local_ranks.iter().copied().min().unwrap_or(0);
        let path_buf = path.to_path_buf();
        let outcome = self.try_execute(move |ctx| -> Result<bool, String> {
            let blob = if ctx.rank() == leader {
                let traces = obs::trace::drain();
                obs::encode_traces(&traces, ctx.clock_offset_ns())
            } else {
                Vec::new()
            };
            match ctx.gather(0, blob) {
                Some(blobs) => {
                    let mut all = Vec::new();
                    for b in &blobs {
                        all.extend(
                            obs::decode_traces(b)
                                .map_err(|e| format!("undecodable rank trace blob: {e}"))?,
                        );
                    }
                    let json = obs::export::chrome_trace_json(&all);
                    // Write-then-rename so a crash mid-export never leaves a
                    // torn half-trace at the published path.
                    let mut tmp = path_buf.clone().into_os_string();
                    tmp.push(".tmp");
                    let tmp = std::path::PathBuf::from(tmp);
                    std::fs::write(&tmp, json)
                        .and_then(|()| std::fs::rename(&tmp, &path_buf))
                        .map_err(|e| format!("writing {}: {e}", path_buf.display()))?;
                    Ok(true)
                }
                None => Ok(false),
            }
        });
        if was_enabled {
            obs::set_enabled(true);
        }
        let mut wrote = false;
        for r in outcome? {
            match r {
                Ok(w) => wrote = wrote || w,
                Err(detail) => return Err(CommError::TraceExport { detail }),
            }
        }
        Ok(wrote)
    }

    /// Gather every process's flight-recorder ring at rank 0 and write one
    /// merged post-mortem JSON file there, tagged with `reason`.
    ///
    /// The cross-rank counterpart of [`xtrapulp_obs::flight::dump`]: a
    /// collective (every process hosting ranks must call it), modeled on
    /// [`Runtime::export_trace`]. Each process's lowest local rank snapshots
    /// the ring — without resetting it — with its transport clock offset
    /// applied; rank 0 merges all logs time-sorted into `path`. Returns
    /// `true` iff this process hosted rank 0 and wrote the file.
    ///
    /// The stall watchdog is disabled for the duration: after a trip the
    /// surviving ranks run this gather over the same slow transport that
    /// stalled, and it must complete rather than re-trip.
    pub fn export_flight(
        &mut self,
        path: &std::path::Path,
        reason: &str,
    ) -> Result<bool, CommError> {
        let prev_deadline = self.wd_deadline;
        self.wd_deadline = None;
        let leader = self.local_ranks.iter().copied().min().unwrap_or(0);
        let path_buf = path.to_path_buf();
        let reason = reason.to_string();
        let outcome = self.try_execute(move |ctx| -> Result<bool, String> {
            let blob = if ctx.rank() == leader {
                let (events, dropped) = obs::flight::snapshot();
                obs::flight::encode_flight(&events, dropped, ctx.clock_offset_ns())
            } else {
                Vec::new()
            };
            match ctx.gather(0, blob) {
                Some(blobs) => {
                    let mut logs = Vec::new();
                    for b in &blobs {
                        logs.push(
                            obs::flight::decode_flight(b)
                                .map_err(|e| format!("undecodable rank flight blob: {e}"))?,
                        );
                    }
                    obs::flight::write_postmortem(&path_buf, &reason, &logs)
                        .map_err(|e| format!("writing {}: {e}", path_buf.display()))?;
                    Ok(true)
                }
                None => Ok(false),
            }
        });
        self.wd_deadline = prev_deadline;
        let mut wrote = false;
        for r in outcome? {
            match r {
                Ok(w) => wrote = wrote || w,
                Err(detail) => return Err(CommError::TraceExport { detail }),
            }
        }
        Ok(wrote)
    }

    fn worker_main(
        transport: Box<dyn Transport>,
        job_rx: Receiver<Job>,
        results_tx: Sender<(usize, std::thread::Result<ErasedResult>)>,
        local: usize,
    ) {
        // The Arc never leaves this thread; it only lets each job's RankCtx
        // share the long-lived endpoint.
        let transport: Arc<dyn Transport> = Arc::from(transport);
        // Label this worker thread so its trace events export under the
        // rank's process lane in chrome://tracing.
        obs::set_thread_rank(transport.rank());
        // Exits when the runtime drops its sender.
        while let Ok(job) = job_rx.recv() {
            let outcome = match job {
                Job::Run { f, wd_deadline } => {
                    let ctx = RankCtx::new(Arc::clone(&transport), wd_deadline);
                    std::panic::catch_unwind(AssertUnwindSafe(|| f(&ctx)))
                }
                Job::Recover => std::panic::catch_unwind(AssertUnwindSafe(|| {
                    Box::new(transport.recover()) as ErasedResult
                })),
            };
            if results_tx.send((local, outcome)).is_err() {
                return;
            }
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Closing the job channels tells every worker to exit its loop.
        self.job_txs.clear();
        for handle in self.workers.drain(..) {
            // A worker that panicked outside a job (impossible today) would
            // surface here; swallow it rather than double-panic in drop.
            let _ = handle.join();
        }
    }
}

/// Unwind the current job with a typed transport failure as the payload;
/// [`Runtime::try_execute`] turns it back into [`CommError::Transport`].
fn fail(err: TransportError) -> ! {
    std::panic::panic_any(err)
}

/// Stable label for a transport failure's kind, for flight-recorder events.
fn transport_error_name(err: &TransportError) -> &'static str {
    match err {
        TransportError::Bind { .. } => "bind",
        TransportError::Connect { .. } => "connect",
        TransportError::Handshake { .. } => "handshake",
        TransportError::ShortRead { .. } => "short_read",
        TransportError::FrameTooLarge { .. } => "frame_too_large",
        TransportError::Codec { .. } => "codec",
        TransportError::PeerDeath { .. } => "peer_death",
        TransportError::Timeout { .. } => "timeout",
    }
}

/// Dump the flight recorder when a recoverable job gives up: the ring holds
/// the collective entries, faults, and recoveries that explain the abort.
fn abort_postmortem(recoveries: u32) {
    obs::flight::record(FlightKind::Fault, "aborted", u64::from(recoveries), 0);
    let _ = obs::flight::dump("aborted");
}

/// What the in-process backend charges as wire bytes for a payload a byte
/// stream would have framed.
fn est_wire(payload_bytes: usize) -> u64 {
    (payload_bytes + FRAME_HEADER_BYTES) as u64
}

/// Successful membership recoveries, fleet-wide.
fn runtime_recoveries_counter() -> &'static obs::registry::Counter {
    static C: OnceLock<obs::registry::Counter> = OnceLock::new();
    C.get_or_init(|| obs::registry::counter("runtime_recoveries_total"))
}

/// Per-collective latency histogram in the global metrics registry, fetched
/// once and cached so the per-collective cost is one atomic `fetch_add`.
fn collective_hist(kind: CollectiveKind) -> &'static Arc<Histogram> {
    static HISTS: OnceLock<[Arc<Histogram>; CollectiveKind::COUNT]> = OnceLock::new();
    &HISTS.get_or_init(|| {
        CollectiveKind::ALL.map(|k| {
            obs::registry::histogram(&format!("comm_collective_nanos{{kind=\"{}\"}}", k.name()))
        })
    })[kind.index()]
}

/// RAII observation of one collective call: a trace span named after the
/// collective (its end event tagged with the wire bytes the call moved) plus
/// a sample in the per-kind latency histogram and the flight recorder's
/// always-on collective enter/exit pair.
struct CollectiveObs<'a> {
    span: obs::Span,
    start: Instant,
    stats: &'a CommStats,
    kind: CollectiveKind,
    wire_before: u64,
    /// The rank's transport-op frame counter at collective entry.
    frame: u64,
}

impl Drop for CollectiveObs<'_> {
    fn drop(&mut self) {
        collective_hist(self.kind).record_duration(self.start.elapsed());
        obs::flight::record(
            FlightKind::CollectiveExit,
            self.kind.name(),
            self.frame,
            u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        if self.span.is_armed() {
            let moved = self
                .stats
                .per_kind_wire(self.kind)
                .saturating_sub(self.wire_before);
            self.span.set_arg(moved);
        }
    }
}

/// The stall watchdog's per-rank progress beacon: which collective the rank
/// is inside, when it last made transport progress, and its monotonically
/// increasing transport-operation frame counter.
#[derive(Clone, Copy)]
struct Beacon {
    collective: &'static str,
    last_progress: Instant,
    frame: u64,
}

/// Handle given to each rank: identity, size, collectives and communication counters.
pub struct RankCtx {
    rank: usize,
    nranks: usize,
    /// Whether the transport moves real bytes (serialise) or typed boxes.
    wire: bool,
    transport: Arc<dyn Transport>,
    stats: CommStats,
    /// Stall deadline sampled at job start (`None` = watchdog disabled).
    wd_deadline: Option<Duration>,
    beacon: Cell<Beacon>,
}

impl RankCtx {
    fn new(transport: Arc<dyn Transport>, wd_deadline: Option<Duration>) -> Self {
        RankCtx {
            rank: transport.rank(),
            nranks: transport.nranks(),
            wire: transport.is_wire(),
            transport,
            stats: CommStats::new(),
            wd_deadline,
            beacon: Cell::new(Beacon {
                collective: "none",
                last_progress: Instant::now(),
                frame: 0,
            }),
        }
    }

    /// This rank's id, in `0..nranks`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the runtime.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// True on rank 0, the conventional root for rooted collectives.
    pub fn is_root(&self) -> bool {
        self.rank == 0
    }

    /// Short name of the transport backend carrying this job (`"inproc"`,
    /// `"tcp"`).
    pub fn backend(&self) -> &'static str {
        self.transport.backend()
    }

    /// Communication counters for this rank.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Estimated offset (ns) mapping this process's trace clock onto rank
    /// 0's, measured during the transport handshake (0 in-process).
    pub fn clock_offset_ns(&self) -> i64 {
        self.transport.clock_offset_ns()
    }

    /// Open the span + latency observation for one collective call. Must be
    /// created after `record_collective` so the wire-byte delta it reads on
    /// drop covers exactly this call. Also resets the watchdog beacon: the
    /// compute phase between collectives never counts against the deadline.
    fn observe(&self, kind: CollectiveKind) -> CollectiveObs<'_> {
        let mut beacon = self.beacon.get();
        beacon.collective = kind.name();
        beacon.last_progress = Instant::now();
        self.beacon.set(beacon);
        obs::flight::record(FlightKind::CollectiveEnter, kind.name(), beacon.frame, 0);
        CollectiveObs {
            span: obs::span(kind.name()),
            start: Instant::now(),
            stats: &self.stats,
            kind,
            wire_before: self.stats.per_kind_wire(kind),
            frame: beacon.frame,
        }
    }

    /// Mark one completed transport operation as watchdog progress. Trips
    /// when the gap since the previous mark reached the deadline — even if
    /// the operation eventually succeeded, a frame that stalled past the
    /// deadline already blew the progress SLA, and tripping on it is what
    /// makes injected-delay drills deterministic.
    fn mark_progress(&self) {
        let mut beacon = self.beacon.get();
        let waited = beacon.last_progress.elapsed();
        let stalled_frame = beacon.frame;
        beacon.frame += 1;
        beacon.last_progress = Instant::now();
        self.beacon.set(beacon);
        if let Some(deadline) = self.wd_deadline {
            if waited >= deadline {
                self.trip(beacon.collective, stalled_frame, waited);
            }
        }
    }

    /// Unwind a failed transport operation, recording the fault in the flight
    /// recorder first. A receive timeout that already waited past the stall
    /// deadline upgrades to a watchdog trip: the peer is alive but not
    /// moving, which is a stall, not a death.
    fn fail_op(&self, err: TransportError) -> ! {
        let beacon = self.beacon.get();
        obs::flight::record(
            FlightKind::Fault,
            transport_error_name(&err),
            beacon.frame,
            0,
        );
        if let (Some(deadline), TransportError::Timeout { .. }) = (self.wd_deadline, &err) {
            let waited = beacon.last_progress.elapsed();
            if waited >= deadline {
                self.trip(beacon.collective, beacon.frame, waited);
            }
        }
        fail(err)
    }

    /// Trip the stall watchdog: flight-record the trip, dump the post-mortem,
    /// and unwind with a typed [`Stall`] payload.
    fn trip(&self, collective: &'static str, frame: u64, waited: Duration) -> ! {
        let waited_ms = u64::try_from(waited.as_millis()).unwrap_or(u64::MAX);
        obs::flight::record(FlightKind::Watchdog, collective, frame, waited_ms);
        let _ = obs::flight::dump("watchdog");
        std::panic::panic_any(Stall {
            collective,
            rank: self.rank,
            frame,
            waited_ms,
        })
    }

    // ----------------------------------------------------------------------------------
    // Point-to-point plumbing under the collectives.
    // ----------------------------------------------------------------------------------

    /// Send one message to `dst`, serialising iff the transport is a byte
    /// stream.
    fn send_message<M: WireMessage>(&self, kind: CollectiveKind, dst: usize, msg: M) {
        let frame = if self.wire {
            Frame::Bytes(msg.encode())
        } else {
            let est = est_wire(msg.wire_size());
            Frame::typed(msg, est)
        };
        match self.transport.send(dst, frame) {
            Ok(wire) => {
                self.stats.record_frames_sent(kind, 1, wire);
                self.mark_progress();
            }
            Err(err) => self.fail_op(err),
        }
    }

    /// Send the same message to every other rank, encoding it once on the
    /// wire path.
    fn send_to_all<M: WireMessage + Clone>(&self, kind: CollectiveKind, msg: &M) {
        if self.wire {
            let bytes = msg.encode();
            for dst in (0..self.nranks).filter(|&d| d != self.rank) {
                match self.transport.send(dst, Frame::Bytes(bytes.clone())) {
                    Ok(wire) => {
                        self.stats.record_frames_sent(kind, 1, wire);
                        self.mark_progress();
                    }
                    Err(err) => self.fail_op(err),
                }
            }
        } else {
            let est = est_wire(msg.wire_size());
            for dst in (0..self.nranks).filter(|&d| d != self.rank) {
                match self.transport.send(dst, Frame::typed(msg.clone(), est)) {
                    Ok(wire) => {
                        self.stats.record_frames_sent(kind, 1, wire);
                        self.mark_progress();
                    }
                    Err(err) => self.fail_op(err),
                }
            }
        }
    }

    /// Receive the next message from `src`, decoding or downcasting as the
    /// transport requires.
    fn recv_message<M: WireMessage>(&self, kind: CollectiveKind, src: usize) -> M {
        let frame = match self.transport.recv(src) {
            Ok(frame) => frame,
            Err(err) => self.fail_op(err),
        };
        self.stats.record_frame_recv(kind, frame.wire_len());
        self.mark_progress();
        match frame {
            Frame::Bytes(bytes) => match M::decode(&bytes) {
                Ok(msg) => msg,
                Err(source) => fail(TransportError::Codec { peer: src, source }),
            },
            Frame::Typed { payload, .. } => match payload.downcast::<M>() {
                Ok(msg) => *msg,
                Err(_) => panic!(
                    "in-process frame carried an unexpected type: \
                     ranks issued mismatched collectives"
                ),
            },
        }
    }

    // ----------------------------------------------------------------------------------
    // Collectives. All of them must be called by every rank, in the same order.
    // ----------------------------------------------------------------------------------

    /// Block until every rank reaches this call.
    pub fn barrier(&self) {
        self.stats.record_collective(CollectiveKind::Barrier);
        let _obs = self.observe(CollectiveKind::Barrier);
        match self.transport.barrier() {
            Ok(cost) => {
                if cost.frames_sent > 0 || cost.wire_sent > 0 {
                    self.stats.record_frames_sent(
                        CollectiveKind::Barrier,
                        cost.frames_sent,
                        cost.wire_sent,
                    );
                }
                if cost.wire_recv > 0 {
                    self.stats
                        .record_frame_recv(CollectiveKind::Barrier, cost.wire_recv);
                }
                self.mark_progress();
            }
            Err(err) => self.fail_op(err),
        }
    }

    /// Broadcast `value` from `root` to every rank. Only the root's `value` is used;
    /// other ranks may pass `None`.
    pub fn broadcast<T>(&self, root: usize, value: Option<T>) -> T
    where
        T: WireMessage + Clone,
    {
        assert!(root < self.nranks, "broadcast root out of range");
        self.stats.record_collective(CollectiveKind::Broadcast);
        let _obs = self.observe(CollectiveKind::Broadcast);
        let out = if self.rank == root {
            let value = value.expect("broadcast root must supply a value");
            self.stats.record_send(value.wire_size() as u64);
            self.send_to_all(CollectiveKind::Broadcast, &value);
            value
        } else {
            self.recv_message(CollectiveKind::Broadcast, root)
        };
        self.stats.record_recv(out.wire_size() as u64);
        out
    }

    /// Gather one value from every rank on every rank, indexed by rank.
    pub fn allgather<T>(&self, value: T) -> Vec<T>
    where
        T: WireMessage + Clone,
    {
        self.stats.record_collective(CollectiveKind::Allgather);
        let _obs = self.observe(CollectiveKind::Allgather);
        self.stats.record_send(value.wire_size() as u64);
        self.send_to_all(CollectiveKind::Allgather, &value);
        let mut own = Some(value);
        let mut out = Vec::with_capacity(self.nranks);
        let mut recv_bytes = 0u64;
        for src in 0..self.nranks {
            let msg = if src == self.rank {
                own.take().expect("own contribution consumed once")
            } else {
                self.recv_message(CollectiveKind::Allgather, src)
            };
            recv_bytes += msg.wire_size() as u64;
            out.push(msg);
        }
        self.stats.record_recv(recv_bytes);
        out
    }

    /// Gather a variable-length contribution from every rank and concatenate them in rank
    /// order on every rank.
    pub fn allgatherv<T>(&self, values: Vec<T>) -> Vec<T>
    where
        T: WireElem,
    {
        self.stats.record_collective(CollectiveKind::Allgather);
        let _obs = self.observe(CollectiveKind::Allgather);
        self.stats.record_send((values.len() * T::SIZE) as u64);
        self.send_to_all(CollectiveKind::Allgather, &values);
        let mut out = Vec::new();
        for src in 0..self.nranks {
            if src == self.rank {
                out.extend_from_slice(&values);
            } else {
                let contrib: Vec<T> = self.recv_message(CollectiveKind::Allgather, src);
                out.extend_from_slice(&contrib);
            }
        }
        self.stats.record_recv((out.len() * T::SIZE) as u64);
        out
    }

    /// Gather one value from every rank at `root`. Returns `Some(values)` on the root,
    /// `None` elsewhere.
    pub fn gather<T>(&self, root: usize, value: T) -> Option<Vec<T>>
    where
        T: WireMessage,
    {
        assert!(root < self.nranks, "gather root out of range");
        self.stats.record_collective(CollectiveKind::Gather);
        let _obs = self.observe(CollectiveKind::Gather);
        self.stats.record_send(value.wire_size() as u64);
        if self.rank != root {
            self.send_message(CollectiveKind::Gather, root, value);
            return None;
        }
        let mut own = Some(value);
        let mut all = Vec::with_capacity(self.nranks);
        let mut recv_bytes = 0u64;
        for src in 0..self.nranks {
            let msg = if src == self.rank {
                own.take().expect("own contribution consumed once")
            } else {
                self.recv_message(CollectiveKind::Gather, src)
            };
            recv_bytes += msg.wire_size() as u64;
            all.push(msg);
        }
        self.stats.record_recv(recv_bytes);
        Some(all)
    }

    /// Scatter one value per rank from `root`. The root passes `Some(values)` with
    /// exactly `nranks` entries; other ranks pass `None`.
    pub fn scatter<T>(&self, root: usize, values: Option<Vec<T>>) -> T
    where
        T: WireMessage,
    {
        assert!(root < self.nranks, "scatter root out of range");
        self.stats.record_collective(CollectiveKind::Scatter);
        let _obs = self.observe(CollectiveKind::Scatter);
        let out = if self.rank == root {
            let values = values.expect("scatter root must supply values");
            assert_eq!(
                values.len(),
                self.nranks,
                "scatter requires exactly one value per rank"
            );
            let total: usize = values.iter().map(WireMessage::wire_size).sum();
            self.stats.record_send(total as u64);
            let mut own = None;
            for (dst, value) in values.into_iter().enumerate() {
                if dst == self.rank {
                    own = Some(value);
                } else {
                    self.send_message(CollectiveKind::Scatter, dst, value);
                }
            }
            own.expect("scatter root owns its slot")
        } else {
            self.recv_message(CollectiveKind::Scatter, root)
        };
        self.stats.record_recv(out.wire_size() as u64);
        out
    }

    /// Personalised all-to-all exchange with exactly one element per destination.
    /// `sends[d]` is delivered to rank `d`; the result's element `s` came from rank `s`.
    pub fn alltoall<T>(&self, sends: Vec<T>) -> Vec<T>
    where
        T: WireMessage,
    {
        assert_eq!(
            sends.len(),
            self.nranks,
            "alltoall requires one element per destination rank"
        );
        self.stats.record_collective(CollectiveKind::Alltoall);
        let _obs = self.observe(CollectiveKind::Alltoall);
        let total: usize = sends.iter().map(WireMessage::wire_size).sum();
        self.stats.record_send(total as u64);
        let mut own = None;
        for (dst, value) in sends.into_iter().enumerate() {
            if dst == self.rank {
                own = Some(value);
            } else {
                self.send_message(CollectiveKind::Alltoall, dst, value);
            }
        }
        let mut out = Vec::with_capacity(self.nranks);
        let mut recv_bytes = 0u64;
        for src in 0..self.nranks {
            let msg = if src == self.rank {
                own.take().expect("own contribution consumed once")
            } else {
                self.recv_message(CollectiveKind::Alltoall, src)
            };
            recv_bytes += msg.wire_size() as u64;
            out.push(msg);
        }
        self.stats.record_recv(recv_bytes);
        out
    }

    /// Personalised all-to-all exchange with variable-length buffers, the workhorse of
    /// XtraPuLP's `ExchangeUpdates` routine. `sends[d]` is delivered to rank `d`; the
    /// result's entry `s` is the buffer sent by rank `s`.
    pub fn alltoallv<T>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>>
    where
        T: WireElem,
    {
        assert_eq!(
            sends.len(),
            self.nranks,
            "alltoallv requires one buffer per destination rank"
        );
        self.stats.record_collective(CollectiveKind::Alltoallv);
        let _obs = self.observe(CollectiveKind::Alltoallv);
        let sent_elems: usize = sends.iter().map(Vec::len).sum();
        self.stats.record_send((sent_elems * T::SIZE) as u64);
        let mut own = None;
        for (dst, buf) in sends.into_iter().enumerate() {
            if dst == self.rank {
                own = Some(buf);
            } else {
                self.send_message(CollectiveKind::Alltoallv, dst, buf);
            }
        }
        let mut out = Vec::with_capacity(self.nranks);
        for src in 0..self.nranks {
            if src == self.rank {
                out.push(own.take().expect("own contribution consumed once"));
            } else {
                out.push(self.recv_message(CollectiveKind::Alltoallv, src));
            }
        }
        let recv_elems: usize = out.iter().map(Vec::len).sum();
        self.stats.record_recv((recv_elems * T::SIZE) as u64);
        out
    }

    /// Element-wise allreduce with a caller-supplied combine function.
    ///
    /// Every rank supplies a slice of the same length; `combine(acc, contribution)` is
    /// applied in rank order, so non-commutative reductions are deterministic.
    pub fn allreduce_with<T, F>(&self, local: &[T], combine: F) -> Vec<T>
    where
        T: WireElem,
        F: Fn(&mut T, &T),
    {
        self.stats.record_collective(CollectiveKind::Allreduce);
        let _obs = self.observe(CollectiveKind::Allreduce);
        self.stats.record_send((local.len() * T::SIZE) as u64);
        let mut own = Some(local.to_vec());
        self.send_to_all(
            CollectiveKind::Allreduce,
            own.as_ref().expect("own contribution present"),
        );
        let mut acc: Option<Vec<T>> = None;
        for src in 0..self.nranks {
            let contrib = if src == self.rank {
                own.take().expect("own contribution consumed once")
            } else {
                self.recv_message::<Vec<T>>(CollectiveKind::Allreduce, src)
            };
            match &mut acc {
                None => acc = Some(contrib),
                Some(acc) => {
                    assert_eq!(
                        acc.len(),
                        contrib.len(),
                        "allreduce requires equal-length contributions on every rank"
                    );
                    for (a, c) in acc.iter_mut().zip(contrib.iter()) {
                        combine(a, c);
                    }
                }
            }
        }
        let acc = acc.expect("a runtime has at least one rank");
        self.stats.record_recv((acc.len() * T::SIZE) as u64);
        acc
    }

    /// Element-wise sum allreduce over `u64`.
    pub fn allreduce_sum_u64(&self, local: &[u64]) -> Vec<u64> {
        self.allreduce_with(local, |a, c| *a += *c)
    }

    /// Element-wise sum allreduce over `i64`.
    pub fn allreduce_sum_i64(&self, local: &[i64]) -> Vec<i64> {
        self.allreduce_with(local, |a, c| *a += *c)
    }

    /// Element-wise sum allreduce over `f64`.
    pub fn allreduce_sum_f64(&self, local: &[f64]) -> Vec<f64> {
        self.allreduce_with(local, |a, c| *a += *c)
    }

    /// Element-wise max allreduce over `u64`.
    pub fn allreduce_max_u64(&self, local: &[u64]) -> Vec<u64> {
        self.allreduce_with(local, |a, c| *a = (*a).max(*c))
    }

    /// Element-wise max allreduce over `f64`.
    pub fn allreduce_max_f64(&self, local: &[f64]) -> Vec<f64> {
        self.allreduce_with(local, |a, c| *a = a.max(*c))
    }

    /// Element-wise min allreduce over `u64`.
    pub fn allreduce_min_u64(&self, local: &[u64]) -> Vec<u64> {
        self.allreduce_with(local, |a, c| *a = (*a).min(*c))
    }

    /// Exclusive prefix sum across ranks: rank `r` receives the sum of the values supplied
    /// by ranks `0..r` (rank 0 receives 0).
    pub fn exscan_sum_u64(&self, value: u64) -> u64 {
        let all = self.allgather(value);
        all[..self.rank].iter().sum()
    }

    /// Sum of one value per rank, available on every rank.
    pub fn allreduce_scalar_sum_u64(&self, value: u64) -> u64 {
        self.allreduce_sum_u64(&[value])[0]
    }

    /// Max of one value per rank, available on every rank.
    pub fn allreduce_scalar_max_u64(&self, value: u64) -> u64 {
        self.allreduce_max_u64(&[value])[0]
    }

    /// Max of one `f64` per rank, available on every rank.
    pub fn allreduce_scalar_max_f64(&self, value: f64) -> f64 {
        self.allreduce_max_f64(&[value])[0]
    }
}
