//! Per-rank communication accounting.
//!
//! The paper repeatedly reasons about communication volume (e.g. why RandHD partitions
//! 7x faster than WDC12 on the same node count, or why RMAT weak scaling degrades).
//! Tracking how many bytes each rank hands to the collectives lets the reproduction
//! report the same quantity even though the "network" may be shared memory.
//!
//! Two levels of accounting coexist:
//!
//! * **Payload bytes** ([`CommStats::bytes_sent`]/[`bytes_received`](CommStats::bytes_received)) —
//!   the element bytes a rank hands to or receives from a collective, including its own
//!   contribution. This is the algorithmic volume the paper reasons about and is identical
//!   on every backend.
//! * **Wire traffic** ([`wire_bytes_sent`](CommStats::wire_bytes_sent), frame counts,
//!   per-collective volumes) — what actually crosses (or would cross) the transport:
//!   self-destined data is excluded, frame headers are included. Real serialized bytes on
//!   the socket backend, the codec's size estimate on the in-process backend.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

/// Which collective a byte count was charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Barrier synchronisation (no payload).
    Barrier,
    /// One-to-all broadcast.
    Broadcast,
    /// All-to-all reduction (sum/max/min or custom).
    Allreduce,
    /// Personalised all-to-all exchange (fixed count per destination).
    Alltoall,
    /// Personalised all-to-all exchange (variable counts).
    Alltoallv,
    /// All-to-all gather of per-rank contributions.
    Allgather,
    /// Rooted gather.
    Gather,
    /// Rooted scatter.
    Scatter,
}

impl CollectiveKind {
    /// Number of collective kinds (size of per-kind counter arrays).
    pub const COUNT: usize = 8;

    /// Every kind, in [`CollectiveKind::index`] order.
    pub const ALL: [CollectiveKind; CollectiveKind::COUNT] = [
        CollectiveKind::Barrier,
        CollectiveKind::Broadcast,
        CollectiveKind::Allreduce,
        CollectiveKind::Alltoall,
        CollectiveKind::Alltoallv,
        CollectiveKind::Allgather,
        CollectiveKind::Gather,
        CollectiveKind::Scatter,
    ];

    /// Stable lowercase name, used as the trace span name and metric label.
    pub const fn name(self) -> &'static str {
        match self {
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::Allreduce => "allreduce",
            CollectiveKind::Alltoall => "alltoall",
            CollectiveKind::Alltoallv => "alltoallv",
            CollectiveKind::Allgather => "allgather",
            CollectiveKind::Gather => "gather",
            CollectiveKind::Scatter => "scatter",
        }
    }

    /// Dense index for per-kind counter arrays.
    pub const fn index(self) -> usize {
        match self {
            CollectiveKind::Barrier => 0,
            CollectiveKind::Broadcast => 1,
            CollectiveKind::Allreduce => 2,
            CollectiveKind::Alltoall => 3,
            CollectiveKind::Alltoallv => 4,
            CollectiveKind::Allgather => 5,
            CollectiveKind::Gather => 6,
            CollectiveKind::Scatter => 7,
        }
    }
}

fn zeroed_counters() -> [AtomicU64; CollectiveKind::COUNT] {
    std::array::from_fn(|_| AtomicU64::new(0))
}

/// Monotonic counters of collective traffic issued by one rank.
///
/// Counters are updated by [`crate::RankCtx`] as collectives are issued and can be read
/// at any time; experiments usually snapshot them once per phase.
#[derive(Debug)]
pub struct CommStats {
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    collectives: AtomicU64,
    barriers: AtomicU64,
    alltoallv_calls: AtomicU64,
    allreduce_calls: AtomicU64,
    wire_bytes_sent: AtomicU64,
    wire_bytes_received: AtomicU64,
    frames_sent: AtomicU64,
    per_kind_calls: [AtomicU64; CollectiveKind::COUNT],
    per_kind_frames: [AtomicU64; CollectiveKind::COUNT],
    per_kind_wire: [AtomicU64; CollectiveKind::COUNT],
}

impl Default for CommStats {
    fn default() -> Self {
        CommStats {
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            collectives: AtomicU64::new(0),
            barriers: AtomicU64::new(0),
            alltoallv_calls: AtomicU64::new(0),
            allreduce_calls: AtomicU64::new(0),
            wire_bytes_sent: AtomicU64::new(0),
            wire_bytes_received: AtomicU64::new(0),
            frames_sent: AtomicU64::new(0),
            per_kind_calls: zeroed_counters(),
            per_kind_frames: zeroed_counters(),
            per_kind_wire: zeroed_counters(),
        }
    }
}

impl CommStats {
    /// Create a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_send(&self, bytes: u64) {
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
    }

    pub(crate) fn record_recv(&self, bytes: u64) {
        self.bytes_received.fetch_add(bytes, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
    }

    pub(crate) fn record_collective(&self, kind: CollectiveKind) {
        self.collectives.fetch_add(1, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
        self.per_kind_calls[kind.index()].fetch_add(1, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
        match kind {
            CollectiveKind::Barrier => {
                self.barriers.fetch_add(1, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
            }
            CollectiveKind::Alltoallv => {
                self.alltoallv_calls.fetch_add(1, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
            }
            CollectiveKind::Allreduce => {
                self.allreduce_calls.fetch_add(1, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
            }
            _ => {}
        }
    }

    /// Charge outbound frames and their wire bytes to a collective.
    pub(crate) fn record_frames_sent(&self, kind: CollectiveKind, frames: u64, wire: u64) {
        self.frames_sent.fetch_add(frames, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
        self.wire_bytes_sent.fetch_add(wire, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
        self.per_kind_frames[kind.index()].fetch_add(frames, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
        self.per_kind_wire[kind.index()].fetch_add(wire, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
    }

    /// Current wire bytes (sent + received) charged to one collective kind.
    pub(crate) fn per_kind_wire(&self, kind: CollectiveKind) -> u64 {
        self.per_kind_wire[kind.index()].load(Ordering::Relaxed) // ordering: stat read; snapshots tolerate cross-cell lag
    }

    /// Charge inbound wire bytes to a collective.
    pub(crate) fn record_frame_recv(&self, kind: CollectiveKind, wire: u64) {
        self.wire_bytes_received.fetch_add(wire, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
        self.per_kind_wire[kind.index()].fetch_add(wire, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
    }

    /// Total bytes this rank handed to collectives as send payload.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed) // ordering: stat read; snapshots tolerate cross-cell lag
    }

    /// Send-payload bytes since a previously captured [`bytes_sent`](CommStats::bytes_sent)
    /// reading. Saturating, so a counter reset between the capture and this call
    /// yields 0 instead of a debug-build panic (or a release-build wraparound) —
    /// the one shared implementation of per-phase communication accounting.
    pub fn bytes_sent_since(&self, before: u64) -> u64 {
        self.bytes_sent().saturating_sub(before)
    }

    /// Total bytes this rank received from collectives.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed) // ordering: stat read; snapshots tolerate cross-cell lag
    }

    /// Total number of collective operations issued (including barriers).
    pub fn collectives(&self) -> u64 {
        self.collectives.load(Ordering::Relaxed) // ordering: stat read; snapshots tolerate cross-cell lag
    }

    /// Number of barrier operations issued.
    pub fn barriers(&self) -> u64 {
        self.barriers.load(Ordering::Relaxed) // ordering: stat read; snapshots tolerate cross-cell lag
    }

    /// Number of alltoallv exchanges issued.
    pub fn alltoallv_calls(&self) -> u64 {
        self.alltoallv_calls.load(Ordering::Relaxed) // ordering: stat read; snapshots tolerate cross-cell lag
    }

    /// Number of allreduce operations issued.
    pub fn allreduce_calls(&self) -> u64 {
        self.allreduce_calls.load(Ordering::Relaxed) // ordering: stat read; snapshots tolerate cross-cell lag
    }

    /// Wire bytes this rank sent over the transport (excludes self-destined
    /// data, includes frame headers on byte-stream backends).
    pub fn wire_bytes_sent(&self) -> u64 {
        self.wire_bytes_sent.load(Ordering::Relaxed) // ordering: stat read; snapshots tolerate cross-cell lag
    }

    /// Wire bytes this rank received over the transport.
    pub fn wire_bytes_received(&self) -> u64 {
        self.wire_bytes_received.load(Ordering::Relaxed) // ordering: stat read; snapshots tolerate cross-cell lag
    }

    /// Point-to-point frames this rank sent over the transport.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent.load(Ordering::Relaxed) // ordering: stat read; snapshots tolerate cross-cell lag
    }

    /// Copy the counters into a plain snapshot struct.
    pub fn snapshot(&self) -> CommStatsSnapshot {
        let volume = |kind: CollectiveKind| CollectiveVolume {
            calls: self.per_kind_calls[kind.index()].load(Ordering::Relaxed), // ordering: stat read; snapshots tolerate cross-cell lag
            frames: self.per_kind_frames[kind.index()].load(Ordering::Relaxed), // ordering: stat read; snapshots tolerate cross-cell lag
            wire_bytes: self.per_kind_wire[kind.index()].load(Ordering::Relaxed), // ordering: stat read; snapshots tolerate cross-cell lag
        };
        CommStatsSnapshot {
            bytes_sent: self.bytes_sent(),
            bytes_received: self.bytes_received(),
            collectives: self.collectives(),
            barriers: self.barriers(),
            alltoallv_calls: self.alltoallv_calls(),
            allreduce_calls: self.allreduce_calls(),
            wire_bytes_sent: self.wire_bytes_sent(),
            wire_bytes_received: self.wire_bytes_received(),
            frames_sent: self.frames_sent(),
            per_collective: PerCollectiveSnapshot {
                barrier: volume(CollectiveKind::Barrier),
                broadcast: volume(CollectiveKind::Broadcast),
                allreduce: volume(CollectiveKind::Allreduce),
                alltoall: volume(CollectiveKind::Alltoall),
                alltoallv: volume(CollectiveKind::Alltoallv),
                allgather: volume(CollectiveKind::Allgather),
                gather: volume(CollectiveKind::Gather),
                scatter: volume(CollectiveKind::Scatter),
            },
        }
    }
}

/// Traffic one collective family generated on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CollectiveVolume {
    /// Times the collective was issued.
    pub calls: u64,
    /// Point-to-point frames it sent.
    pub frames: u64,
    /// Wire bytes it moved (sent + received).
    pub wire_bytes: u64,
}

impl CollectiveVolume {
    fn merged(self, other: CollectiveVolume) -> CollectiveVolume {
        CollectiveVolume {
            calls: self.calls + other.calls,
            frames: self.frames + other.frames,
            wire_bytes: self.wire_bytes + other.wire_bytes,
        }
    }
}

/// Per-collective traffic breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PerCollectiveSnapshot {
    /// Barrier traffic (release frames only; payload-free).
    pub barrier: CollectiveVolume,
    /// Broadcast traffic.
    pub broadcast: CollectiveVolume,
    /// Allreduce traffic.
    pub allreduce: CollectiveVolume,
    /// Alltoall traffic.
    pub alltoall: CollectiveVolume,
    /// Alltoallv traffic.
    pub alltoallv: CollectiveVolume,
    /// Allgather(v) traffic.
    pub allgather: CollectiveVolume,
    /// Rooted gather traffic.
    pub gather: CollectiveVolume,
    /// Rooted scatter traffic.
    pub scatter: CollectiveVolume,
}

impl PerCollectiveSnapshot {
    fn merged(self, other: PerCollectiveSnapshot) -> PerCollectiveSnapshot {
        PerCollectiveSnapshot {
            barrier: self.barrier.merged(other.barrier),
            broadcast: self.broadcast.merged(other.broadcast),
            allreduce: self.allreduce.merged(other.allreduce),
            alltoall: self.alltoall.merged(other.alltoall),
            alltoallv: self.alltoallv.merged(other.alltoallv),
            allgather: self.allgather.merged(other.allgather),
            gather: self.gather.merged(other.gather),
            scatter: self.scatter.merged(other.scatter),
        }
    }
}

/// Plain-data snapshot of [`CommStats`], convenient for returning from rank closures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CommStatsSnapshot {
    /// Total bytes handed to collectives as send payload.
    pub bytes_sent: u64,
    /// Total bytes received from collectives.
    pub bytes_received: u64,
    /// Total collective operations (including barriers).
    pub collectives: u64,
    /// Barrier count.
    pub barriers: u64,
    /// Alltoallv count.
    pub alltoallv_calls: u64,
    /// Allreduce count.
    pub allreduce_calls: u64,
    /// Wire bytes sent over the transport (real on sockets, estimated in-proc).
    pub wire_bytes_sent: u64,
    /// Wire bytes received over the transport.
    pub wire_bytes_received: u64,
    /// Point-to-point frames sent over the transport.
    pub frames_sent: u64,
    /// Traffic broken down by collective family.
    pub per_collective: PerCollectiveSnapshot,
}

impl CommStatsSnapshot {
    /// Element-wise sum of two snapshots (used to aggregate across ranks).
    pub fn merged(self, other: CommStatsSnapshot) -> CommStatsSnapshot {
        CommStatsSnapshot {
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_received: self.bytes_received + other.bytes_received,
            collectives: self.collectives + other.collectives,
            barriers: self.barriers + other.barriers,
            alltoallv_calls: self.alltoallv_calls + other.alltoallv_calls,
            allreduce_calls: self.allreduce_calls + other.allreduce_calls,
            wire_bytes_sent: self.wire_bytes_sent + other.wire_bytes_sent,
            wire_bytes_received: self.wire_bytes_received + other.wire_bytes_received,
            frames_sent: self.frames_sent + other.frames_sent,
            per_collective: self.per_collective.merged(other.per_collective),
        }
    }
}
