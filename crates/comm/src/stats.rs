//! Per-rank communication accounting.
//!
//! The paper repeatedly reasons about communication volume (e.g. why RandHD partitions
//! 7x faster than WDC12 on the same node count, or why RMAT weak scaling degrades).
//! Tracking how many bytes each rank hands to the collectives lets the reproduction
//! report the same quantity even though the "network" is shared memory.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

/// Which collective a byte count was charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Barrier synchronisation (no payload).
    Barrier,
    /// One-to-all broadcast.
    Broadcast,
    /// All-to-all reduction (sum/max/min or custom).
    Allreduce,
    /// Personalised all-to-all exchange (fixed count per destination).
    Alltoall,
    /// Personalised all-to-all exchange (variable counts).
    Alltoallv,
    /// All-to-all gather of per-rank contributions.
    Allgather,
    /// Rooted gather.
    Gather,
    /// Rooted scatter.
    Scatter,
}

/// Monotonic counters of collective traffic issued by one rank.
///
/// Counters are updated by [`crate::RankCtx`] as collectives are issued and can be read
/// at any time; experiments usually snapshot them once per phase.
#[derive(Debug, Default)]
pub struct CommStats {
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    collectives: AtomicU64,
    barriers: AtomicU64,
    alltoallv_calls: AtomicU64,
    allreduce_calls: AtomicU64,
}

impl CommStats {
    /// Create a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_send(&self, bytes: u64) {
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_recv(&self, bytes: u64) {
        self.bytes_received.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_collective(&self, kind: CollectiveKind) {
        self.collectives.fetch_add(1, Ordering::Relaxed);
        match kind {
            CollectiveKind::Barrier => {
                self.barriers.fetch_add(1, Ordering::Relaxed);
            }
            CollectiveKind::Alltoallv => {
                self.alltoallv_calls.fetch_add(1, Ordering::Relaxed);
            }
            CollectiveKind::Allreduce => {
                self.allreduce_calls.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// Total bytes this rank handed to collectives as send payload.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Send-payload bytes since a previously captured [`bytes_sent`](CommStats::bytes_sent)
    /// reading. Saturating, so a counter reset between the capture and this call
    /// yields 0 instead of a debug-build panic (or a release-build wraparound) —
    /// the one shared implementation of per-phase communication accounting.
    pub fn bytes_sent_since(&self, before: u64) -> u64 {
        self.bytes_sent().saturating_sub(before)
    }

    /// Total bytes this rank received from collectives.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Total number of collective operations issued (including barriers).
    pub fn collectives(&self) -> u64 {
        self.collectives.load(Ordering::Relaxed)
    }

    /// Number of barrier operations issued.
    pub fn barriers(&self) -> u64 {
        self.barriers.load(Ordering::Relaxed)
    }

    /// Number of alltoallv exchanges issued.
    pub fn alltoallv_calls(&self) -> u64 {
        self.alltoallv_calls.load(Ordering::Relaxed)
    }

    /// Number of allreduce operations issued.
    pub fn allreduce_calls(&self) -> u64 {
        self.allreduce_calls.load(Ordering::Relaxed)
    }

    /// Copy the counters into a plain snapshot struct.
    pub fn snapshot(&self) -> CommStatsSnapshot {
        CommStatsSnapshot {
            bytes_sent: self.bytes_sent(),
            bytes_received: self.bytes_received(),
            collectives: self.collectives(),
            barriers: self.barriers(),
            alltoallv_calls: self.alltoallv_calls(),
            allreduce_calls: self.allreduce_calls(),
        }
    }
}

/// Plain-data snapshot of [`CommStats`], convenient for returning from rank closures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CommStatsSnapshot {
    /// Total bytes handed to collectives as send payload.
    pub bytes_sent: u64,
    /// Total bytes received from collectives.
    pub bytes_received: u64,
    /// Total collective operations (including barriers).
    pub collectives: u64,
    /// Barrier count.
    pub barriers: u64,
    /// Alltoallv count.
    pub alltoallv_calls: u64,
    /// Allreduce count.
    pub allreduce_calls: u64,
}

impl CommStatsSnapshot {
    /// Element-wise sum of two snapshots (used to aggregate across ranks).
    pub fn merged(self, other: CommStatsSnapshot) -> CommStatsSnapshot {
        CommStatsSnapshot {
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_received: self.bytes_received + other.bytes_received,
            collectives: self.collectives + other.collectives,
            barriers: self.barriers + other.barriers,
            alltoallv_calls: self.alltoallv_calls + other.alltoallv_calls,
            allreduce_calls: self.allreduce_calls + other.allreduce_calls,
        }
    }
}
