//! Unit tests for the rank-parallel runtime and its collectives.

use crate::transport::Transport as _;
use crate::{Runtime, Timer};

#[test]
fn single_rank_runtime_runs() {
    let out = Runtime::run(1, |ctx| {
        assert_eq!(ctx.rank(), 0);
        assert_eq!(ctx.nranks(), 1);
        assert!(ctx.is_root());
        42u32
    });
    assert_eq!(out, vec![42]);
}

#[test]
fn results_are_indexed_by_rank() {
    let out = Runtime::run(6, |ctx| ctx.rank() * 10);
    assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
}

#[test]
#[should_panic(expected = "at least one rank")]
fn zero_ranks_panics() {
    Runtime::run(0, |_ctx| ());
}

#[test]
fn barrier_completes() {
    let out = Runtime::run(4, |ctx| {
        for _ in 0..10 {
            ctx.barrier();
        }
        ctx.stats().barriers()
    });
    assert!(out.iter().all(|&b| b == 10));
}

#[test]
fn broadcast_from_root_zero() {
    let out = Runtime::run(4, |ctx| {
        let value = if ctx.is_root() {
            Some(vec![1u64, 2, 3])
        } else {
            None
        };
        ctx.broadcast(0, value)
    });
    for v in out {
        assert_eq!(v, vec![1, 2, 3]);
    }
}

#[test]
fn broadcast_from_nonzero_root() {
    let out = Runtime::run(5, |ctx| {
        let value = if ctx.rank() == 3 { Some(99u32) } else { None };
        ctx.broadcast(3, value)
    });
    assert_eq!(out, vec![99; 5]);
}

#[test]
fn repeated_broadcasts_do_not_leak_stale_values() {
    let out = Runtime::run(3, |ctx| {
        let mut got = Vec::new();
        for round in 0u64..20 {
            let value = if ctx.is_root() { Some(round * 7) } else { None };
            got.push(ctx.broadcast(0, value));
        }
        got
    });
    for per_rank in out {
        assert_eq!(per_rank, (0..20).map(|r| r * 7).collect::<Vec<_>>());
    }
}

#[test]
fn allgather_collects_in_rank_order() {
    let out = Runtime::run(4, |ctx| ctx.allgather(ctx.rank() as u64 + 100));
    for v in out {
        assert_eq!(v, vec![100, 101, 102, 103]);
    }
}

#[test]
fn allgatherv_concatenates_in_rank_order() {
    let out = Runtime::run(3, |ctx| {
        // Rank r contributes r copies of its id.
        let mine = vec![ctx.rank() as u32; ctx.rank()];
        ctx.allgatherv(mine)
    });
    for v in out {
        assert_eq!(v, vec![1, 2, 2]);
    }
}

#[test]
fn gather_returns_only_on_root() {
    let out = Runtime::run(4, |ctx| ctx.gather(2, ctx.rank() as u8));
    assert_eq!(out[0], None);
    assert_eq!(out[1], None);
    assert_eq!(out[2], Some(vec![0, 1, 2, 3]));
    assert_eq!(out[3], None);
}

#[test]
fn scatter_delivers_per_rank_values() {
    let out = Runtime::run(4, |ctx| {
        let values = if ctx.is_root() {
            Some(vec![10u32, 11, 12, 13])
        } else {
            None
        };
        ctx.scatter(0, values)
    });
    assert_eq!(out, vec![10, 11, 12, 13]);
}

#[test]
fn alltoall_transposes() {
    let out = Runtime::run(4, |ctx| {
        // Rank s sends value s*10 + d to rank d.
        let sends: Vec<u32> = (0..4).map(|d| (ctx.rank() * 10 + d) as u32).collect();
        ctx.alltoall(sends)
    });
    for (d, received) in out.iter().enumerate() {
        let expected: Vec<u32> = (0..4).map(|s| (s * 10 + d) as u32).collect();
        assert_eq!(received, &expected);
    }
}

#[test]
fn alltoallv_delivers_variable_buffers() {
    let out = Runtime::run(3, |ctx| {
        // Rank s sends a buffer of length s+d to rank d, filled with s*100+d.
        let sends: Vec<Vec<u64>> = (0..3)
            .map(|d| vec![(ctx.rank() * 100 + d) as u64; ctx.rank() + d])
            .collect();
        ctx.alltoallv(sends)
    });
    for (d, received) in out.iter().enumerate() {
        for (s, buf) in received.iter().enumerate() {
            assert_eq!(buf.len(), s + d);
            assert!(buf.iter().all(|&x| x == (s * 100 + d) as u64));
        }
    }
}

#[test]
fn alltoallv_conserves_elements() {
    let out = Runtime::run(4, |ctx| {
        let sends: Vec<Vec<u32>> = (0..4)
            .map(|d| vec![0u32; (ctx.rank() * 7 + d * 3) % 11])
            .collect();
        let sent: usize = sends.iter().map(Vec::len).sum();
        let received: usize = ctx.alltoallv(sends).iter().map(Vec::len).sum();
        (sent, received)
    });
    let total_sent: usize = out.iter().map(|(s, _)| s).sum();
    let total_received: usize = out.iter().map(|(_, r)| r).sum();
    assert_eq!(total_sent, total_received);
}

#[test]
fn allreduce_sum_and_max_and_min() {
    let out = Runtime::run(4, |ctx| {
        let r = ctx.rank() as u64;
        let sum = ctx.allreduce_sum_u64(&[r, 1, 2 * r]);
        let max = ctx.allreduce_max_u64(&[r, 7]);
        let min = ctx.allreduce_min_u64(&[r + 1]);
        (sum, max, min)
    });
    for (sum, max, min) in out {
        assert_eq!(sum, vec![6, 4, 12]);
        assert_eq!(max, vec![3, 7]);
        assert_eq!(min, vec![1]);
    }
}

#[test]
fn allreduce_f64_sum() {
    let out = Runtime::run(3, |ctx| ctx.allreduce_sum_f64(&[ctx.rank() as f64 * 0.5]));
    for v in out {
        assert!((v[0] - 1.5).abs() < 1e-12);
    }
}

#[test]
fn allreduce_with_is_rank_ordered() {
    // Use a non-commutative combine (string-ish concatenation encoded as digit append)
    // to verify the reduction applies contributions in rank order.
    let out = Runtime::run(4, |ctx| {
        ctx.allreduce_with(&[ctx.rank() as u64 + 1], |a, c| *a = *a * 10 + *c)
    });
    for v in out {
        assert_eq!(v, vec![1234]);
    }
}

#[test]
fn exscan_sum_matches_prefix() {
    let out = Runtime::run(5, |ctx| ctx.exscan_sum_u64(ctx.rank() as u64 + 1));
    // contributions are 1,2,3,4,5; exclusive prefix sums are 0,1,3,6,10
    assert_eq!(out, vec![0, 1, 3, 6, 10]);
}

#[test]
fn scalar_allreduce_helpers() {
    let out = Runtime::run(4, |ctx| {
        let s = ctx.allreduce_scalar_sum_u64(ctx.rank() as u64);
        let m = ctx.allreduce_scalar_max_u64(ctx.rank() as u64);
        let f = ctx.allreduce_scalar_max_f64(ctx.rank() as f64 / 2.0);
        (s, m, f)
    });
    for (s, m, f) in out {
        assert_eq!(s, 6);
        assert_eq!(m, 3);
        assert!((f - 1.5).abs() < 1e-12);
    }
}

#[test]
fn stats_count_traffic() {
    let out = Runtime::run(2, |ctx| {
        let sends = vec![vec![1u64; 10], vec![2u64; 20]];
        let _ = ctx.alltoallv(sends);
        let _ = ctx.allreduce_sum_u64(&[1, 2, 3]);
        ctx.stats().snapshot()
    });
    for snap in &out {
        assert_eq!(snap.alltoallv_calls, 1);
        assert_eq!(snap.allreduce_calls, 1);
        // 30 u64 sent in the alltoallv plus 3 in the allreduce.
        assert_eq!(snap.bytes_sent, (30 + 3) * 8);
        assert!(snap.collectives >= 2);
    }
    // The alltoallv payload is conserved across ranks: everything sent is received.
    let sent: u64 = out.iter().map(|s| s.bytes_sent).sum();
    let recv: u64 = out.iter().map(|s| s.bytes_received).sum();
    // Allreduce and allgather-style collectives deliver each contribution to every rank,
    // so the aggregate received volume is at least the aggregate sent volume.
    assert!(recv >= sent);
}

#[test]
fn mixed_collective_sequences_are_consistent() {
    // Stress the slot-reuse protocol by interleaving many collective types.
    let out = Runtime::run(4, |ctx| {
        let mut checksum = 0u64;
        for round in 0..25u64 {
            let b = ctx.broadcast(
                (round % 4) as usize,
                if ctx.rank() == (round % 4) as usize {
                    Some(round)
                } else {
                    None
                },
            );
            checksum += b;
            let g = ctx.allgather(ctx.rank() as u64 + round);
            checksum += g.iter().sum::<u64>();
            let sends: Vec<Vec<u64>> = (0..4).map(|_d| vec![round; ctx.rank()]).collect();
            let recv = ctx.alltoallv(sends);
            checksum += recv.iter().map(|b| b.len() as u64).sum::<u64>();
            let red = ctx.allreduce_scalar_sum_u64(round + ctx.rank() as u64);
            checksum += red;
        }
        checksum
    });
    // All ranks must agree on every collective result, hence on the checksum.
    assert!(out.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn timer_measures_elapsed_time() {
    let t = Timer::start();
    std::thread::sleep(std::time::Duration::from_millis(5));
    assert!(t.elapsed_secs() >= 0.004);
}

#[test]
fn phase_timer_accumulates() {
    let mut pt = crate::PhaseTimer::new();
    pt.time("a", || {
        std::thread::sleep(std::time::Duration::from_millis(2))
    });
    pt.time("a", || {
        std::thread::sleep(std::time::Duration::from_millis(2))
    });
    pt.time("b", || ());
    assert!(pt.get("a").as_secs_f64() >= 0.003);
    assert!(pt.total() >= pt.get("a"));
    assert_eq!(pt.iter().count(), 2);
}

// ----------------------------------------------------------------------------
// Stall watchdog + flight recorder.
// ----------------------------------------------------------------------------

/// Wrap each rank of an in-process fabric in a [`FaultInjectTransport`]
/// built from `plan_for(rank)`.
fn fault_injected_runtime(nranks: usize, plan_for: impl Fn(usize) -> crate::FaultPlan) -> Runtime {
    let transports: Vec<Box<dyn crate::Transport>> = crate::InProcFabric::create(nranks)
        .into_iter()
        .map(|t| {
            let plan = plan_for(t.rank());
            Box::new(crate::FaultInjectTransport::new(Box::new(t), plan))
                as Box<dyn crate::Transport>
        })
        .collect();
    Runtime::from_transports(transports).unwrap()
}

#[test]
fn watchdog_trips_typed_on_an_injected_stall() {
    use std::time::Duration;
    // Rank 1 sleeps 400 ms before every operation; the deadline is 50 ms.
    let mut rt = fault_injected_runtime(2, |rank| {
        let plan = crate::FaultPlan::new(3);
        if rank == 1 {
            plan.delay_every(1, Duration::from_millis(400))
        } else {
            plan
        }
    });
    rt.set_watchdog_deadline(Some(Duration::from_millis(50)));
    let err = rt
        .try_execute(|ctx| ctx.allreduce_scalar_sum_u64(ctx.rank() as u64))
        .expect_err("an injected stall past the deadline must trip");
    match err {
        crate::CommError::Stalled {
            collective,
            rank,
            waited_ms,
            ..
        } => {
            assert_eq!(collective, "allreduce");
            assert!(rank < 2, "the tripping rank is one of the job's ranks");
            assert!(waited_ms >= 50, "waited {waited_ms} ms");
        }
        other => panic!("expected Stalled, got {other:?}"),
    }
    // The trip dumped a post-mortem naming the stalled collective.
    let dump = xtrapulp_obs::flight::dump_path();
    let body = std::fs::read_to_string(&dump).expect("watchdog trip wrote a post-mortem");
    assert!(body.contains("\"reason\":\"watchdog\""), "{body}");
    assert!(body.contains("\"kind\":\"watchdog\""), "{body}");
    let _ = std::fs::remove_file(&dump);
    // The runtime survives: the watchdog unwound the job, not the workers.
    // Like any mid-collective failure, the abandoned collective's in-flight
    // frames must be flushed by a recovery before the next job.
    rt.set_watchdog_deadline(None);
    rt.recover().unwrap();
    let sums = rt.execute(|ctx| ctx.allreduce_scalar_sum_u64(1));
    assert_eq!(sums, vec![2, 2]);
}

#[test]
fn watchdog_does_not_trip_on_slow_but_progressing_ranks() {
    use std::time::Duration;
    // Every operation on every rank is delayed 20 ms — slow, but each op
    // completes well inside the 250 ms deadline, so progress never stops.
    let mut rt = fault_injected_runtime(2, |_| {
        crate::FaultPlan::new(5).delay_every(1, Duration::from_millis(20))
    });
    rt.set_watchdog_deadline(Some(Duration::from_millis(250)));
    let results = rt
        .try_execute(|ctx| {
            let mut acc = 0u64;
            for _ in 0..4 {
                acc = ctx.allreduce_scalar_sum_u64(ctx.rank() as u64 + 1);
            }
            acc
        })
        .expect("a slow-but-progressing job must not trip the watchdog");
    assert_eq!(results, vec![3, 3]);
}

#[test]
fn watchdog_disabled_by_default_and_per_job_sampling() {
    use std::time::Duration;
    let mut rt = Runtime::new(2);
    assert_eq!(rt.watchdog_deadline(), None);
    rt.set_watchdog_deadline(Some(Duration::from_secs(5)));
    assert_eq!(rt.watchdog_deadline(), Some(Duration::from_secs(5)));
    // A normal fast job under an armed watchdog completes untripped.
    let r = rt.try_execute(|ctx| ctx.allreduce_scalar_max_u64(ctx.rank() as u64));
    assert_eq!(r.unwrap(), vec![1, 1]);
}

#[test]
fn export_flight_merges_ranks_into_one_postmortem() {
    let dir = std::env::temp_dir().join(format!(
        "xtrapulp-flight-export-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("postmortem.json");
    let mut rt = Runtime::new(2);
    // Generate some collective traffic so the ring has events to merge.
    rt.execute(|ctx| ctx.allreduce_scalar_sum_u64(ctx.rank() as u64));
    let wrote = rt.export_flight(&path, "test-export").unwrap();
    assert!(wrote, "the process hosting rank 0 writes the file");
    let body = std::fs::read_to_string(&path).unwrap();
    assert!(body.contains("\"reason\":\"test-export\""));
    assert!(body.contains("\"kind\":\"collective_enter\""), "{body}");
    assert!(body.contains("\"name\":\"allreduce\""), "{body}");
    let _ = std::fs::remove_dir_all(&dir);
}
