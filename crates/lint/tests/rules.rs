//! Fixture-based positive/negative tests for every rule, allowlist
//! round-trip, and `--json` schema stability.

use xtrapulp_lint::{allow, apply_allowlist, lint_source, render_json, Finding, Rule};

#[test]
fn r1_must_trigger() {
    let findings = lint_source(
        "crates/comm/src/fixture.rs",
        include_str!("fixtures/r1_trigger.rs"),
    );
    let r1: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == Rule::R1CollectiveSymmetry)
        .collect();
    assert_eq!(r1.len(), 4, "one per fixture site: {findings:?}");
    // The scratch-file acceptance: findings name file, line and rule.
    let msg = r1[0].to_string();
    assert!(msg.contains("crates/comm/src/fixture.rs:6"), "{msg}");
    assert!(msg.contains("R1"), "{msg}");
    assert!(msg.contains("allreduce_sum_u64"), "{msg}");
    assert!(r1.iter().any(|f| f.message.contains("barrier")));
    assert!(r1.iter().any(|f| f.message.contains("broadcast")));
    assert!(r1.iter().any(|f| f.message.contains("export_flight")));
}

#[test]
fn r1_must_not_trigger() {
    let findings = lint_source(
        "crates/comm/src/fixture.rs",
        include_str!("fixtures/r1_clean.rs"),
    );
    assert!(
        findings
            .iter()
            .all(|f| f.rule != Rule::R1CollectiveSymmetry),
        "{findings:?}"
    );
}

#[test]
fn r2_must_trigger() {
    let findings = lint_source(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/r2_trigger.rs"),
    );
    let r2: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == Rule::R2AtomicOrdering)
        .collect();
    // Three unjustified sites + one mixed-class report on `flag`.
    assert_eq!(r2.len(), 4, "{findings:?}");
    assert!(r2
        .iter()
        .any(|f| f.message.contains("mixed ordering classes") && f.message.contains("`flag`")));
}

#[test]
fn r2_must_not_trigger() {
    let findings = lint_source(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/r2_clean.rs"),
    );
    assert!(
        findings.iter().all(|f| f.rule != Rule::R2AtomicOrdering),
        "{findings:?}"
    );
}

#[test]
fn r3_must_trigger() {
    let findings = lint_source(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/r3_trigger.rs"),
    );
    let r3: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == Rule::R3LockDiscipline)
        .collect();
    assert_eq!(r3.len(), 4, "{findings:?}");
    assert!(r3.iter().any(|f| f.message.contains("`g`")));
    assert!(r3.iter().any(|f| f.message.contains("`stats`")));
    assert!(r3.iter().any(|f| f.message.contains("send")));
    assert!(r3.iter().any(|f| f.message.contains("exscan_sum_u64")));
}

#[test]
fn r3_must_not_trigger() {
    let findings = lint_source(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/r3_clean.rs"),
    );
    assert!(
        findings.iter().all(|f| f.rule != Rule::R3LockDiscipline),
        "{findings:?}"
    );
}

#[test]
fn r4_must_trigger_in_deterministic_scope() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/r4_trigger.rs"),
    );
    let r4: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == Rule::R4Determinism)
        .collect();
    assert_eq!(r4.len(), 3, "{findings:?}");
}

#[test]
fn r4_must_not_trigger() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/r4_clean.rs"),
    );
    assert!(
        findings.iter().all(|f| f.rule != Rule::R4Determinism),
        "{findings:?}"
    );
    // The same triggering code is fine outside the deterministic prefixes
    // (obs/serve timing code is the allowlisted domain).
    let outside = lint_source(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/r4_trigger.rs"),
    );
    assert!(
        outside.iter().all(|f| f.rule != Rule::R4Determinism),
        "{outside:?}"
    );
}

#[test]
fn r5_must_trigger() {
    let findings = lint_source(
        "crates/graph/src/fixture.rs",
        include_str!("fixtures/r5_trigger.rs"),
    );
    let r5: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == Rule::R5PanicHygiene)
        .collect();
    assert_eq!(r5.len(), 3, "{findings:?}");
    assert!(r5.iter().any(|f| f.message.contains("peer-supplied")));
}

#[test]
fn r5_must_not_trigger() {
    let findings = lint_source(
        "crates/graph/src/fixture.rs",
        include_str!("fixtures/r5_clean.rs"),
    );
    assert!(
        findings.iter().all(|f| f.rule != Rule::R5PanicHygiene),
        "{findings:?}"
    );
    // Library-only rule: the same code under bin/test paths is exempt.
    for path in [
        "crates/bench/src/bin/tool.rs",
        "crates/graph/tests/io.rs",
        "examples/demo.rs",
    ] {
        let f = lint_source(path, include_str!("fixtures/r5_trigger.rs"));
        assert!(
            f.iter().all(|x| x.rule != Rule::R5PanicHygiene),
            "{path}: {f:?}"
        );
    }
}

#[test]
fn allowlist_round_trip() {
    let findings = lint_source(
        "crates/graph/src/fixture.rs",
        include_str!("fixtures/r5_trigger.rs"),
    );
    assert!(!findings.is_empty());
    // Baseline generated from the findings absorbs exactly those findings...
    let baseline = allow::write_baseline(&findings);
    let entries = allow::parse(&baseline).expect("generated baseline parses");
    let applied = apply_allowlist(findings.clone(), &entries);
    assert!(
        applied.unsuppressed.is_empty(),
        "{:?}",
        applied.unsuppressed
    );
    assert_eq!(applied.suppressed, 3);
    assert!(applied.unused_entries.is_empty());
    // ...but one extra finding beyond `max` fails the whole file group.
    let mut more = findings.clone();
    more.push(Finding::new(
        Rule::R5PanicHygiene,
        "crates/graph/src/fixture.rs",
        999,
        "new unwrap".into(),
    ));
    let applied = apply_allowlist(more, &entries);
    assert_eq!(applied.unsuppressed.len(), 4);
    assert!(applied.unsuppressed[0].message.contains("exceeds"));
    // ...and an entry matching nothing is reported stale.
    let applied = apply_allowlist(Vec::new(), &entries);
    assert_eq!(applied.unused_entries.len(), 1);
}

#[test]
fn json_schema_is_stable() {
    let findings = vec![Finding::new(
        Rule::R1CollectiveSymmetry,
        "crates/x/src/a.rs",
        7,
        "collective `barrier` under \"rank\" flow".into(),
    )];
    let applied = apply_allowlist(findings, &[]);
    let json = render_json(&applied);
    // Schema version 1: exact top-level keys and finding keys, stable order.
    assert_eq!(
        json,
        "{\"version\":1,\"clean\":false,\"total\":1,\"suppressed\":0,\
         \"findings\":[{\"rule\":\"R1\",\"rule_name\":\"collective-symmetry\",\
         \"file\":\"crates/x/src/a.rs\",\"line\":7,\
         \"message\":\"collective `barrier` under \\\"rank\\\" flow\"}]}"
    );
    let clean = apply_allowlist(Vec::new(), &[]);
    assert_eq!(
        render_json(&clean),
        "{\"version\":1,\"clean\":true,\"total\":0,\"suppressed\":0,\"findings\":[]}"
    );
}
