// R5 must-trigger fixtures (linted as library code). (Lint corpus, never
// compiled.)

pub fn parse(s: &str) -> u64 {
    s.parse().unwrap() // finding: unwrap in library code
}

pub fn head(v: &[u64]) -> u64 {
    *v.first().expect("nonempty") // finding: expect in library code
}

pub fn peer_offset(recv_counts: &[usize], r: usize) -> usize {
    recv_counts[r] // finding: unchecked index into peer-supplied buffer
}
