// R2 must-trigger fixtures. (Lint corpus, never compiled.)

pub fn unjustified_relaxed(c: &Counter) {
    c.hits.fetch_add(1, Ordering::Relaxed); // finding: justification comment absent
}

pub struct Flag {
    flag: AtomicBool,
}

impl Flag {
    pub fn set(&self) {
        self.flag.store(true, Ordering::SeqCst); // finding: unjustified SeqCst
    }

    pub fn get(&self) -> bool {
        self.flag.load(Ordering::Relaxed) // finding: unjustified + mixed classes on `flag`
    }
}
