// R2 must-not-trigger fixtures. (Lint corpus, never compiled.)

pub fn justified_relaxed(c: &Counter) {
    c.hits.fetch_add(1, Ordering::Relaxed); // ordering: monotonic counter; no cross-field sync
}

pub fn acquire_release_pair(e: &Epoch) {
    // Acquire/Release need no per-site comment (the pairing is the idiom);
    // they only participate in mixed-class detection.
    e.epoch.store(1, Ordering::Release);
    let _ = e.epoch.load(Ordering::Acquire);
}

pub fn acknowledged_mixed(f: &Flag) {
    f.flag.store(true, Ordering::SeqCst); // ordering: mixed — SeqCst store fences the slow path, Relaxed poll is advisory
    let _ = f.flag.load(Ordering::Relaxed); // ordering: advisory poll
}

pub fn cmp_ordering_is_not_atomic(a: i32, b: i32) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}

pub fn comment_above_split_call(c: &Counter) {
    // ordering: monotonic counter; statement split across lines by rustfmt
    c.long_named_field_for_wrapping
        .fetch_add(1, Ordering::Relaxed);
}
