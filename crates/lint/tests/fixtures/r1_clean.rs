// R1 must-not-trigger fixtures. (Lint corpus, never compiled.)

pub fn payload_asymmetry_only(ctx: &Ctx) {
    // The rank-dependent part computes the payload; the collective itself is
    // reached by every rank.
    let payload = if ctx.rank() == 0 { Some(compute()) } else { None };
    let roots = ctx.broadcast(0, payload);
    use_roots(roots);
}

pub fn annotated(ctx: &Ctx) {
    if ctx.is_root() {
        // lint: rank-asymmetric — coordinator-only trace drain; workers are
        // parked in recv and never enter this path
        ctx.export_trace(path);
    }
}

pub fn non_rank_condition(ctx: &Ctx, ready: bool) {
    if ready {
        ctx.barrier(); // every rank computes `ready` identically
    }
}

pub fn after_rank_branch(ctx: &Ctx) {
    if ctx.rank() == 0 {
        log_header();
    }
    ctx.allgatherv(vec![1u64]); // sibling statement, not inside the branch
}
