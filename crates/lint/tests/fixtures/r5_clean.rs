// R5 must-not-trigger fixtures. (Lint corpus, never compiled.)

pub fn typed_parse(s: &str) -> Result<u64, std::num::ParseIntError> {
    s.parse()
}

pub fn annotated(v: &[u64]) -> u64 {
    *v.first().expect("nonempty") // lint: panic-ok — caller validated len above
}

pub fn checked_peer_access(recv_counts: &[usize], r: usize) -> Option<usize> {
    recv_counts.get(r).copied()
}

pub fn annotated_peer_index(recv_counts: &[usize], r: usize) -> usize {
    recv_counts[r] // lint: checked-index — r < nranks validated at rendezvous
}

pub fn local_index_ok(part_sizes: &[usize], p: usize) -> usize {
    part_sizes[p] // locally-owned buffer: not peer data
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_fine_in_tests() {
        super::typed_parse("7").unwrap();
    }
}
