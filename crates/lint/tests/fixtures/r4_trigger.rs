// R4 must-trigger fixtures (linted under a deterministic-path prefix).
// (Lint corpus, never compiled.)

pub fn wall_clock() -> Instant {
    Instant::now() // finding: wall clock in a bit-identical path
}

pub fn system_time() -> u64 {
    SystemTime::now().elapsed().as_nanos() as u64 // finding
}

pub fn ambient_rng(parts: &mut [i32]) {
    let mut rng = rand::thread_rng(); // finding: ambient randomness
    parts[0] = rng.gen_range(0..4);
}
