// R4 must-not-trigger fixtures (linted under a deterministic-path prefix).
// (Lint corpus, never compiled.)

pub fn annotated_telemetry() -> Instant {
    // lint: nondeterministic-ok — timing telemetry only; no algorithmic read
    Instant::now()
}

pub fn seeded_rng(seed: u64, parts: &mut [i32]) {
    // Seeded generators are the deterministic idiom — not flagged.
    let mut rng = SmallRng::seed_from_u64(seed);
    parts[0] = rng.gen_range(0..4);
}

pub fn instant_as_type(t: Instant) -> Instant {
    t // mentioning the type is fine; only `::now()` is ambient
}
