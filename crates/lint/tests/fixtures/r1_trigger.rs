// R1 must-trigger fixtures: collectives reachable only under rank-dependent
// control flow. (This file is a lint corpus, never compiled.)

pub fn direct_branch(ctx: &Ctx) {
    if ctx.rank() == 0 {
        ctx.allreduce_sum_u64(&[1]); // finding: rank-conditional allreduce
    }
}

pub fn else_branch(ctx: &Ctx) {
    if ctx.rank() == 0 {
        prepare();
    } else {
        ctx.barrier(); // finding: the else of a rank test is rank-dependent too
    }
}

pub fn match_on_rank(ctx: &Ctx) {
    match ctx.rank() {
        0 => {
            ctx.broadcast::<u64>(0, Some(1)); // finding: turbofish form still detected
        }
        _ => {}
    }
}

pub fn nested(ctx: &Ctx, ready: bool) {
    if is_coordinator(ctx) {
        if ready {
            ctx.export_flight(path, "done"); // finding: inherited rank-dependence
        }
    }
}
