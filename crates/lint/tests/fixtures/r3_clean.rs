// R3 must-not-trigger fixtures. (Lint corpus, never compiled.)

pub fn dropped_before(ctx: &Ctx, m: &Mutex<u64>) {
    let g = m.lock();
    let v = *g;
    drop(g);
    ctx.barrier();
    let _ = v;
}

pub fn scoped_out(ctx: &Ctx, m: &Mutex<u64>) {
    {
        let g = m.lock();
        consume(*g);
    }
    ctx.allreduce_sum_u64(&[1]);
}

pub fn temporary_guard(ctx: &Ctx, m: &Mutex<Vec<u64>>) {
    // The guard here is a temporary dropped at the end of the statement; the
    // binding holds the *length*, not the lock.
    let len = m.lock().len();
    ctx.barrier();
    let _ = len;
}

pub fn channel_send_is_not_transport(m: &Mutex<u64>, tx: &Sender<u64>) {
    let g = m.lock();
    tx.send(*g).ok(); // mpsc send: receiver is not a transport
}

pub fn io_read_is_not_a_lock(ctx: &Ctx, f: &mut File) {
    let mut buf = [0u8; 8];
    let n = f.read(&mut buf); // io::Read::read takes an argument: not a guard
    ctx.barrier();
    let _ = n;
}
