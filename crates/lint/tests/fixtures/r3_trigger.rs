// R3 must-trigger fixtures. (Lint corpus, never compiled.)

pub fn mutex_across_barrier(ctx: &Ctx, m: &Mutex<u64>) {
    let g = m.lock();
    ctx.barrier(); // finding: `g` still live
    drop(g);
}

pub fn rwlock_read_across_collective(ctx: &Ctx, l: &RwLock<u64>) {
    let stats = l.read();
    let _ = ctx.allgather(*stats); // finding: `stats` guard live
}

pub fn guard_across_transport_send(m: &Mutex<u64>, transport: &T) {
    let g = m.lock().unwrap();
    transport.send(1, frame(*g)); // finding: guard live across wire op
}

pub fn if_let_guard(ctx: &Ctx, m: &Mutex<u64>) {
    if let Some(g) = m.try_lock() {
        ctx.exscan_sum_u64(*g); // finding: guard bound by the if-let head
    }
}
