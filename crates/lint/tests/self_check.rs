//! The self-run gate: the workspace must be clean against the committed
//! `lint-allow.toml`, and the baseline must follow policy (R5-only —
//! R1–R4 findings are fixed or annotated inline, never baselined).

use std::path::PathBuf;
use xtrapulp_lint::{allow, apply_allowlist, lint_workspace, Rule};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_is_clean_against_baseline() {
    let root = workspace_root();
    let (findings, files) = lint_workspace(&root).expect("workspace scan succeeds");
    assert!(
        files.len() > 50,
        "scan looks truncated: only {} files",
        files.len()
    );
    let baseline = std::fs::read_to_string(root.join("lint-allow.toml"))
        .expect("committed lint-allow.toml exists");
    let entries = allow::parse(&baseline).expect("committed baseline parses");
    let applied = apply_allowlist(findings, &entries);
    assert!(
        applied.unsuppressed.is_empty(),
        "workspace has unsuppressed lint findings:\n{}",
        applied
            .unsuppressed
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        applied.unused_entries.is_empty(),
        "stale lint-allow.toml entries (remove them): {:?}",
        applied
            .unused_entries
            .iter()
            .map(|e| format!("{} {}", e.rule.id(), e.path))
            .collect::<Vec<_>>()
    );
}

#[test]
fn baseline_contains_only_r5_entries() {
    let root = workspace_root();
    let baseline = std::fs::read_to_string(root.join("lint-allow.toml"))
        .expect("committed lint-allow.toml exists");
    let entries = allow::parse(&baseline).expect("committed baseline parses");
    for e in &entries {
        assert_eq!(
            e.rule,
            Rule::R5PanicHygiene,
            "policy: only R5 panic-hygiene may be baselined; {} findings in {} \
             must be fixed or annotated inline",
            e.rule.id(),
            e.path
        );
    }
}

#[test]
fn scratch_violation_fails_the_bin() {
    // Acceptance drill: drop a rank-conditional allreduce and an unjustified
    // Ordering::Relaxed into a scratch workspace; the tool must exit non-zero
    // naming file, line and rule.
    let dir = std::env::temp_dir().join(format!("xtrapulp-lint-scratch-{}", std::process::id()));
    let src = dir.join("crates/scratch/src");
    std::fs::create_dir_all(&src).expect("scratch tree");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn f(ctx: &Ctx, c: &C) {\n\
         \x20   if ctx.rank() == 0 {\n\
         \x20       ctx.allreduce_sum_u64(&[1]);\n\
         \x20   }\n\
         \x20   c.n.fetch_add(1, Ordering::Relaxed);\n\
         }\n",
    )
    .expect("scratch file");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtrapulp-lint"))
        .args(["--root", dir.to_str().expect("utf8 tmp path"), "--no-allow"])
        .output()
        .expect("lint bin runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "expected non-zero exit, got {:?}\n{stdout}",
        out.status
    );
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(
        stdout.contains("crates/scratch/src/lib.rs:3: R1(collective-symmetry)"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/scratch/src/lib.rs:5: R2(atomic-ordering)"),
        "{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
