//! The rule engine: a single scope-tracking walk over the token stream.
//!
//! The walker maintains a stack of brace scopes annotated with the two
//! context bits the rules need — "is this reachable only under rank-dependent
//! control flow" (R1) and "is this test code" (all rules) — plus the set of
//! lock guards live in each scope (R3). Rules fire inline as their trigger
//! tokens stream past; see LINT.md for the catalogue.

use crate::lexer::{lex, Lexed, Tok, Token};
use crate::{FileKind, Finding, Rule};
use std::collections::HashMap;

/// Identifiers that mark a condition as rank-dependent when they appear in
/// an `if`/`while`/`match` head: `rank == 0`, `self.rank()`, `is_root()`,
/// `is_coordinator`, `my_rank`, ...
const RANK_IDENTS: &[&str] = &[
    "rank",
    "my_rank",
    "is_root",
    "is_coordinator",
    "coordinator",
];

/// Collective operations on `CommCtx`/`RankCtx`/`Transport`/`Runtime`/
/// `Session`: every rank must reach these in the same order.
fn is_collective(name: &str) -> bool {
    matches!(
        name,
        "barrier"
            | "broadcast"
            | "gather"
            | "gatherv"
            | "scatter"
            | "scatterv"
            | "allgather"
            | "allgatherv"
            | "alltoall"
            | "alltoallv"
            | "export_trace"
            | "export_flight"
    ) || name.starts_with("allreduce")
        || name.starts_with("exscan")
}

/// Transport-level point-to-point ops count as comm ops for R3 (a guard held
/// across a blocking wire op is as deadlock-prone as one held across a
/// collective) — but only on receivers that are plausibly a transport, so
/// channel `tx.send(..)` does not fire.
const P2P_OPS: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "send_message",
    "recv_message",
];
const P2P_RECEIVERS: &[&str] = &["transport", "ctx"];

/// Variable-name prefixes that mark a buffer as peer-supplied for the R5
/// unchecked-indexing heuristic.
const PEER_DATA_PREFIXES: &[&str] = &["peer_", "recv_", "remote_", "incoming_"];

const LOCK_METHODS: &[&str] = &["lock", "try_lock"];
const RW_METHODS: &[&str] = &["read", "write", "try_read", "try_write", "upgradable_read"];

#[derive(Debug, Clone)]
struct Guard {
    name: String,
    line: usize,
}

#[derive(Debug, Default)]
struct Scope {
    rank_dep: bool,
    cfg_test: bool,
    from_if: bool,
    guards: Vec<Guard>,
}

struct AtomicAccess {
    field: String,
    ordering_class: u8, // 0 = Relaxed, 1 = Acquire/Release/AcqRel, 2 = SeqCst
    class_name: &'static str,
    line: usize,
    /// The site's `// ordering:` comment contains the word "mixed",
    /// acknowledging a deliberate cross-class pairing on this field.
    mixed_ack: bool,
}

/// Lint one source file. `path` is the repo-relative path used both for
/// reporting and for file-kind / deterministic-scope classification.
pub fn lint_source(path: &str, source: &str, det_prefixes: &[String]) -> Vec<Finding> {
    let kind = crate::classify(path);
    if kind == FileKind::Test {
        return Vec::new();
    }
    let lexed = lex(source);
    let toks = &lexed.tokens;
    let mut findings = Vec::new();
    let mut scopes: Vec<Scope> = vec![Scope::default()];
    let mut pending_rank = false;
    let mut pending_test = false;
    let mut pending_from_if = false;
    let mut pending_guards: Vec<Guard> = Vec::new();
    let mut else_carry = false;
    let mut last_popped_if_rank: bool = false;
    let mut stmt_start_line = 1usize;
    let mut at_stmt_start = true;
    let mut atomic_accesses: Vec<AtomicAccess> = Vec::new();

    let in_rank_dep = |scopes: &[Scope]| scopes.iter().any(|s| s.rank_dep);
    let in_test = |scopes: &[Scope]| scopes.iter().any(|s| s.cfg_test);
    let deterministic_scope =
        kind == FileKind::Lib && det_prefixes.iter().any(|p| path.starts_with(p.as_str()));

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if at_stmt_start {
            stmt_start_line = t.line;
            at_stmt_start = false;
        }
        match &t.tok {
            Tok::Punct('{') => {
                let parent = scopes.last().expect("root scope always present"); // lint: panic-ok — scope-stack invariant: the root scope is never popped
                scopes.push(Scope {
                    rank_dep: parent.rank_dep || pending_rank || else_carry,
                    cfg_test: parent.cfg_test || pending_test,
                    from_if: pending_from_if,
                    guards: std::mem::take(&mut pending_guards),
                });
                pending_rank = false;
                pending_test = false;
                pending_from_if = false;
                else_carry = false;
                at_stmt_start = true;
            }
            Tok::Punct('}') => {
                if scopes.len() > 1 {
                    let popped = scopes.pop().expect("non-root scope"); // lint: panic-ok — guarded by the len() > 1 check above
                    last_popped_if_rank = popped.from_if && popped.rank_dep;
                }
                at_stmt_start = true;
            }
            Tok::Punct(';') => at_stmt_start = true,
            Tok::Punct('#') => {
                // Attribute: `#[...]` or `#![...]`. Mark pending test context
                // for `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ...))]`, ...
                let mut j = i + 1;
                if j < toks.len() && toks[j].is_punct('!') {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct('[') {
                    let mut depth = 0i32;
                    let mut has_test = false;
                    while j < toks.len() {
                        match &toks[j].tok {
                            Tok::Punct('[') => depth += 1,
                            Tok::Punct(']') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            Tok::Ident(s) if s == "test" => has_test = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    if has_test {
                        pending_test = true;
                    }
                    i = j + 1;
                    continue;
                }
            }
            Tok::Ident(kw) if kw == "if" || kw == "while" || kw == "match" => {
                let (rank_cond, guards, end) = scan_condition(toks, i + 1);
                pending_rank = rank_cond || (kw != "match" && else_carry);
                if kw != "match" {
                    else_carry = false;
                }
                pending_from_if = kw == "if";
                pending_guards = guards;
                // Do NOT skip the condition tokens: rules (R2/R5/...) must
                // still see them. Only the scope flags are precomputed.
                let _ = end;
            }
            Tok::Ident(kw) if kw == "else" => {
                else_carry = last_popped_if_rank;
            }
            Tok::Ident(kw) if kw == "let" => {
                if let Some(guard) = scan_let_guard(toks, i) {
                    scopes
                        .last_mut()
                        // lint: panic-ok — scope-stack invariant: root never popped
                        .expect("root scope always present")
                        .guards
                        .push(guard);
                }
            }
            // `drop(name)` releases a tracked guard early.
            Tok::Ident(kw)
                if kw == "drop"
                    && i + 3 < toks.len()
                    && toks[i + 1].is_punct('(')
                    && toks[i + 3].is_punct(')') =>
            {
                if let Some(name) = toks[i + 2].ident() {
                    for s in scopes.iter_mut() {
                        s.guards.retain(|g| g.name != name);
                    }
                }
            }
            Tok::Ident(name) if name == "Ordering" => {
                // `Ordering::X` — skip `std::cmp::Ordering` paths.
                let is_cmp =
                    i >= 2 && toks[i - 1].is_op("::") && toks[i - 2].ident() == Some("cmp");
                if !is_cmp && i + 2 < toks.len() && toks[i + 1].is_op("::") {
                    if let Some(ord) = toks[i + 2].ident() {
                        let class = match ord {
                            "Relaxed" => Some((0u8, "Relaxed")),
                            "Acquire" | "Release" | "AcqRel" => Some((1, "Acquire/Release")),
                            "SeqCst" => Some((2, "SeqCst")),
                            _ => None,
                        };
                        if let Some((class, class_name)) = class {
                            let annotated =
                                has_annotation(&lexed, t.line, stmt_start_line, "// ordering:");
                            if let Some(field) = atomic_receiver_field(toks, i) {
                                let mixed_ack = annotated
                                    && annotation_mentions(
                                        &lexed,
                                        t.line,
                                        stmt_start_line,
                                        "mixed",
                                    );
                                atomic_accesses.push(AtomicAccess {
                                    field,
                                    ordering_class: class,
                                    class_name,
                                    line: t.line,
                                    mixed_ack,
                                });
                            }
                            if (class == 0 || class == 2) && !in_test(&scopes) && !annotated {
                                findings.push(Finding::new(
                                    Rule::R2AtomicOrdering,
                                    path,
                                    t.line,
                                    format!(
                                        "`Ordering::{ord}` without an adjacent \
                                         `// ordering:` justification comment"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            Tok::Ident(name) if i > 0 && toks[i - 1].is_punct('.') => {
                let is_call = call_follows(toks, i);
                if is_call {
                    let collective = is_collective(name);
                    let p2p = P2P_OPS.contains(&name.as_str())
                        && i >= 2
                        && toks[i - 2]
                            .ident()
                            .is_some_and(|r| P2P_RECEIVERS.contains(&r));
                    // R1: collective reachable only under rank-dependent flow.
                    if collective
                        && in_rank_dep(&scopes)
                        && !in_test(&scopes)
                        && !has_annotation(&lexed, t.line, stmt_start_line, "rank-asymmetric")
                    {
                        findings.push(Finding::new(
                            Rule::R1CollectiveSymmetry,
                            path,
                            t.line,
                            format!(
                                "collective `{name}` is reachable only under \
                                 rank-dependent control flow — divergence/deadlock \
                                 hazard (annotate `// lint: rank-asymmetric — <why>` \
                                 if intentional)"
                            ),
                        ));
                    }
                    // R3: a lock guard live across a collective / transport op.
                    if (collective || p2p) && !in_test(&scopes) {
                        let live: Vec<&Guard> =
                            scopes.iter().flat_map(|s| s.guards.iter()).collect();
                        if let Some(g) = live.last() {
                            if !has_annotation(&lexed, t.line, stmt_start_line, "guard-held-ok") {
                                findings.push(Finding::new(
                                    Rule::R3LockDiscipline,
                                    path,
                                    t.line,
                                    format!(
                                        "lock guard `{}` (acquired line {}) is still live \
                                         across blocking comm op `{name}` — drop it first",
                                        g.name, g.line
                                    ),
                                ));
                            }
                        }
                    }
                    // R5: panic hygiene in library code.
                    if kind == FileKind::Lib
                        && (name == "unwrap" || name == "expect")
                        && !in_test(&scopes)
                        && !has_annotation(&lexed, t.line, stmt_start_line, "panic-ok")
                    {
                        findings.push(Finding::new(
                            Rule::R5PanicHygiene,
                            path,
                            t.line,
                            format!(
                                "`.{name}()` in library code — return a typed error or \
                                 annotate `// lint: panic-ok — <why>`"
                            ),
                        ));
                    }
                }
            }
            Tok::Ident(name)
                if kind == FileKind::Lib
                    && i + 1 < toks.len()
                    && toks[i + 1].is_punct('[')
                    && PEER_DATA_PREFIXES.iter().any(|p| name.starts_with(p))
                    && !(i > 0
                        && (toks[i - 1].is_punct('.')
                            || toks[i - 1].ident() == Some("let")
                            || toks[i - 1].ident() == Some("mut")))
                    && !in_test(&scopes)
                    && !has_annotation(&lexed, t.line, stmt_start_line, "checked-index") =>
            {
                // R5 (peer-index): direct indexing into a peer-supplied buffer.
                findings.push(Finding::new(
                    Rule::R5PanicHygiene,
                    path,
                    t.line,
                    format!(
                        "unchecked indexing into peer-supplied buffer `{name}` — \
                         validate bounds or annotate `// lint: checked-index — <why>`"
                    ),
                ));
            }
            Tok::Ident(name) if deterministic_scope && !in_test(&scopes) => {
                // R4: wall-clock / ambient randomness in deterministic kernels.
                let hit = match name.as_str() {
                    "Instant" | "SystemTime" => {
                        i + 2 < toks.len()
                            && toks[i + 1].is_op("::")
                            && toks[i + 2].ident() == Some("now")
                    }
                    "thread_rng" | "random" => {
                        i + 1 < toks.len()
                            && toks[i + 1].is_punct('(')
                            // `random` must be `rand::random` / `thread_rng()`,
                            // not a local method named `random`.
                            && (name == "thread_rng"
                                || (i >= 2
                                    && toks[i - 1].is_op("::")
                                    && toks[i - 2].ident() == Some("rand")))
                    }
                    _ => false,
                };
                if hit && !has_annotation(&lexed, t.line, stmt_start_line, "nondeterministic-ok") {
                    findings.push(Finding::new(
                        Rule::R4Determinism,
                        path,
                        t.line,
                        format!(
                            "`{name}` in a deterministic (bit-identical) path — move the \
                             nondeterminism out or annotate \
                             `// lint: nondeterministic-ok — <why>`"
                        ),
                    ));
                }
            }
            _ => {}
        }
        i += 1;
    }

    // R2 second half: mixed ordering classes on the same atomic field.
    findings.extend(mixed_ordering_findings(path, &atomic_accesses));
    findings.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.id().cmp(b.rule.id())));
    findings
}

fn mixed_ordering_findings(path: &str, accesses: &[AtomicAccess]) -> Vec<Finding> {
    let mut per_field: HashMap<&str, Vec<&AtomicAccess>> = HashMap::new();
    for a in accesses {
        per_field.entry(a.field.as_str()).or_default().push(a);
    }
    let mut out = Vec::new();
    for (field, accs) in per_field {
        let mut classes: Vec<(u8, &'static str, usize)> = Vec::new();
        for a in accs.iter() {
            if !classes.iter().any(|(c, _, _)| *c == a.ordering_class) {
                classes.push((a.ordering_class, a.class_name, a.line));
            }
        }
        if classes.len() > 1 {
            // Escape hatch: any site whose `// ordering:` comment mentions
            // "mixed" acknowledges the cross-class pairing deliberately.
            if accs.iter().any(|a| a.mixed_ack) {
                continue;
            }
            classes.sort_by_key(|(c, _, _)| *c);
            let desc: Vec<String> = classes
                .iter()
                .map(|(_, name, line)| format!("{name} (line {line})"))
                .collect();
            out.push(Finding::new(
                Rule::R2AtomicOrdering,
                path,
                classes.last().map(|(_, _, l)| *l).unwrap_or(1),
                format!(
                    "atomic field `{field}` is accessed with mixed ordering classes: {} — \
                     unify them or say `mixed` in an `// ordering:` comment at one site",
                    desc.join(", ")
                ),
            ));
        }
    }
    out
}

/// Is the ident at `i` followed by a call's `(`, allowing a turbofish
/// (`.broadcast::<Vec<u64>>(..)`) in between?
fn call_follows(toks: &[Token], i: usize) -> bool {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_op("::"))
        && toks.get(j + 1).is_some_and(|t| t.is_punct('<'))
    {
        // Skip the balanced `<...>` of the turbofish. `>` only ever closes
        // generics here (a comparison cannot follow `::<`).
        let mut depth = 0i32;
        j += 1;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                Tok::Punct('(') | Tok::Punct(';') | Tok::Punct('{') => return false,
                _ => {}
            }
            j += 1;
        }
    }
    toks.get(j).is_some_and(|t| t.is_punct('('))
}

/// Walk back from the `Ordering` token to the atomic receiver field of the
/// enclosing call: `self.count.fetch_add(1, Ordering::Relaxed)` -> `count`,
/// `ENABLED.store(x, Ordering::SeqCst)` -> `ENABLED`,
/// `self.buckets[i].fetch_add(..)` -> `buckets`.
fn atomic_receiver_field(toks: &[Token], ordering_idx: usize) -> Option<String> {
    // Find the `(` that opens the call this Ordering argument belongs to.
    let mut depth = 0i32;
    let mut j = ordering_idx;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        match &toks[j].tok {
            Tok::Punct(')') | Tok::Punct(']') => depth += 1,
            Tok::Punct('(') | Tok::Punct('[') => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            Tok::Punct(';') | Tok::Punct('{') if depth == 0 => return None,
            _ => {}
        }
    }
    // toks[j] is the call-open `(`; before it: method ident, then `.`, then
    // the receiver (ident, or `]` closing an index expression).
    if j < 3 {
        return None;
    }
    let method = toks[j - 1].ident()?;
    let _ = method;
    if !toks[j - 2].is_punct('.') {
        return None;
    }
    let mut k = j - 3;
    if toks[k].is_punct(']') {
        // Skip the balanced `[...]` of an indexed receiver.
        let mut d = 1i32;
        loop {
            if k == 0 {
                return None;
            }
            k -= 1;
            match &toks[k].tok {
                Tok::Punct(']') => d += 1,
                Tok::Punct('[') => {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
    toks[k].ident().map(|s| s.to_string())
}

/// Scan an `if`/`while`/`match` head from `start` to its opening `{` at
/// delimiter depth 0. Returns (condition-is-rank-dependent, guards bound by
/// an `if let ... = x.lock()` head, index of the `{`).
fn scan_condition(toks: &[Token], start: usize) -> (bool, Vec<Guard>, usize) {
    let mut depth = 0i32;
    let mut rank = false;
    let mut j = start;
    let mut is_let = false;
    let mut last_pat_ident: Option<(String, usize)> = None;
    let mut seen_eq = false;
    let mut acquires = false;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('{') if depth == 0 => break,
            Tok::Punct(';') if depth == 0 => break,
            Tok::Punct('=') if depth == 0 => seen_eq = true,
            Tok::Ident(s) => {
                if s == "let" && j == start {
                    is_let = true;
                } else if RANK_IDENTS.contains(&s.as_str()) {
                    rank = true;
                }
                if is_let && !seen_eq && s != "let" && s != "mut" {
                    last_pat_ident = Some((s.clone(), toks[j].line));
                }
                if seen_eq && is_lock_acquisition(toks, j) {
                    acquires = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let guards = match (acquires, last_pat_ident) {
        (true, Some((name, line))) => vec![Guard { name, line }],
        _ => Vec::new(),
    };
    (rank, guards, j)
}

/// Is the ident at `j` a lock-acquisition method call (`.lock(...)`,
/// `.read()`, `.write()`, `try_*` variants)? `read`/`write` must be
/// zero-argument so `io::Read::read(&mut buf)` never matches.
fn is_lock_acquisition(toks: &[Token], j: usize) -> bool {
    if j == 0 || !toks[j - 1].is_punct('.') {
        return false;
    }
    let Some(name) = toks[j].ident() else {
        return false;
    };
    if LOCK_METHODS.contains(&name) {
        return toks.get(j + 1).is_some_and(|t| t.is_punct('('));
    }
    if RW_METHODS.contains(&name) {
        return toks.get(j + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(j + 2).is_some_and(|t| t.is_punct(')'));
    }
    false
}

/// Scan a `let` statement starting at the `let` token; return a Guard if it
/// binds a lock guard to a name. The acquisition must be the tail of the
/// initialiser (optionally followed by `.unwrap()` / `.expect(..)` / `?`) so
/// `let n = m.lock().len();` — where the guard is a temporary — is not
/// tracked.
fn scan_let_guard(toks: &[Token], let_idx: usize) -> Option<Guard> {
    let mut depth = 0i32;
    let mut j = let_idx + 1;
    let mut seen_eq = false;
    let mut name: Option<(String, usize)> = None;
    let mut acq_idx: Option<usize> = None;
    let limit = (let_idx + 240).min(toks.len());
    while j < limit {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct(';') if depth == 0 => break,
            Tok::Punct('=') if depth == 0 && !toks[j].is_op("=>") => seen_eq = true,
            Tok::Ident(s) => {
                if !seen_eq {
                    if depth == 0 && s != "mut" && name.is_none() {
                        // First depth-0 ident is the binding for plain
                        // patterns; tuple/struct patterns take the first.
                        let is_type_pos = toks[let_idx + 1..j]
                            .iter()
                            .any(|t| t.is_punct(':') && !t.is_op("::"));
                        if !is_type_pos {
                            name = Some((s.clone(), toks[j].line));
                        }
                    }
                } else if is_lock_acquisition(toks, j) {
                    acq_idx = Some(j);
                }
            }
            _ => {}
        }
        j += 1;
    }
    let (name, line) = name?;
    let acq = acq_idx?;
    // Verify the tail after the acquisition call is only unwrap/expect/`?`.
    let mut k = acq + 1; // at `(`
    let mut d = 0i32;
    while k < j {
        match &toks[k].tok {
            Tok::Punct('(') => d += 1,
            Tok::Punct(')') => {
                d -= 1;
                if d == 0 {
                    k += 1;
                    break;
                }
            }
            _ => {}
        }
        k += 1;
    }
    while k < j {
        match &toks[k].tok {
            Tok::Punct('?') => k += 1,
            Tok::Punct('.') => {
                let m = toks.get(k + 1).and_then(|t| t.ident());
                if m == Some("unwrap") || m == Some("expect") {
                    // Skip `.unwrap()` / `.expect(<args>)`.
                    k += 2;
                    let mut dd = 0i32;
                    while k < j {
                        match &toks[k].tok {
                            Tok::Punct('(') => dd += 1,
                            Tok::Punct(')') => {
                                dd -= 1;
                                if dd == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                } else {
                    return None; // guard is consumed by a further call
                }
            }
            _ => return None,
        }
    }
    Some(Guard { name, line })
}

fn has_annotation(lexed: &Lexed, line: usize, stmt_start_line: usize, needle: &str) -> bool {
    annotation_mentions(lexed, line, stmt_start_line, needle)
}

/// Does the comment adjacent to `line` (or to the statement's first line,
/// for calls rustfmt split across lines) contain `needle`?
fn annotation_mentions(lexed: &Lexed, line: usize, stmt_start_line: usize, needle: &str) -> bool {
    let check = |l: usize| lexed.annotation_text(l).is_some_and(|c| c.contains(needle));
    check(line) || (stmt_start_line != line && check(stmt_start_line))
}
