//! # xtrapulp-lint
//!
//! Workspace-aware static analysis for the XtraPuLP reproduction. The
//! codebase stakes hard correctness claims — bit-identical partitions across
//! thread counts, backends and crash/recovery; deadlock-free collectives with
//! typed failure — and this crate enforces the coding invariants those claims
//! depend on, as a blocking CI gate:
//!
//! - **R1 collective-symmetry** — a `CommCtx`/`Transport` collective
//!   reachable only under rank-dependent control flow is a divergence/
//!   deadlock hazard.
//! - **R2 atomic-ordering audit** — every `Ordering::Relaxed`/`SeqCst` in
//!   non-test code needs an adjacent `// ordering:` justification; mixed
//!   ordering classes on one atomic field are reported.
//! - **R3 lock discipline** — a `Mutex`/`RwLock` guard live across a
//!   collective or transport send/recv is an error.
//! - **R4 determinism** — wall-clock / ambient randomness inside the
//!   bit-identical partitioner and analytics kernels is flagged.
//! - **R5 panic hygiene** — `unwrap`/`expect`/peer-data indexing in library
//!   code outside the committed allowlist.
//!
//! See `LINT.md` at the workspace root for the full rule catalogue and the
//! annotation grammar. The lexer and block/scope parser are hand-rolled (no
//! `syn`), consistent with the offline `vendor/` policy.

pub mod allow;
pub mod engine;
pub mod lexer;

use std::fmt;
use std::path::Path;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    R1CollectiveSymmetry,
    R2AtomicOrdering,
    R3LockDiscipline,
    R4Determinism,
    R5PanicHygiene,
}

impl Rule {
    pub fn id(&self) -> &'static str {
        match self {
            Rule::R1CollectiveSymmetry => "R1",
            Rule::R2AtomicOrdering => "R2",
            Rule::R3LockDiscipline => "R3",
            Rule::R4Determinism => "R4",
            Rule::R5PanicHygiene => "R5",
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Rule::R1CollectiveSymmetry => "collective-symmetry",
            Rule::R2AtomicOrdering => "atomic-ordering",
            Rule::R3LockDiscipline => "lock-discipline",
            Rule::R4Determinism => "determinism",
            Rule::R5PanicHygiene => "panic-hygiene",
        }
    }

    pub fn from_id(id: &str) -> Option<Rule> {
        match id {
            "R1" => Some(Rule::R1CollectiveSymmetry),
            "R2" => Some(Rule::R2AtomicOrdering),
            "R3" => Some(Rule::R3LockDiscipline),
            "R4" => Some(Rule::R4Determinism),
            "R5" => Some(Rule::R5PanicHygiene),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl Finding {
    pub fn new(rule: Rule, file: &str, line: usize, message: String) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}({}): {}",
            self.file,
            self.line,
            self.rule.id(),
            self.rule.name(),
            self.message
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    Lib,
    Bin,
    Example,
    Bench,
    Test,
}

/// Classify a repo-relative path. Test classification is structural: a
/// `tests/` directory component or a `tests.rs` file (the workspace's
/// `#[cfg(test)] mod tests;` convention).
pub fn classify(path: &str) -> FileKind {
    let norm = path.replace('\\', "/");
    let components: Vec<&str> = norm.split('/').collect();
    let stem = components
        .last()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("");
    if components.contains(&"tests") || stem == "tests" {
        FileKind::Test
    } else if components.contains(&"examples") {
        FileKind::Example
    } else if components.contains(&"benches") {
        FileKind::Bench
    } else if components.contains(&"bin") || stem == "main" {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Path prefixes whose library code is a deterministic (bit-identical)
/// surface: the partitioner and analytics kernels plus the graph/update
/// structures they run over. Wall-clock and ambient randomness here is an R4
/// finding unless annotated.
pub fn default_deterministic_prefixes() -> Vec<String> {
    [
        "crates/core/src",
        "crates/multilevel/src",
        "crates/analytics/src",
        "crates/graph/src",
        "crates/dynamic/src",
        "crates/spmv/src",
        "crates/gen/src",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Lint a single source text under its repo-relative path.
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    engine::lint_source(path, source, &default_deterministic_prefixes())
}

/// Directories never scanned: third-party stand-ins, build output, and the
/// lint crate's own fixture corpus (which contains deliberate violations).
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "fixtures", "node_modules"];

/// Walk the workspace and lint every `.rs` file. Returns the findings plus
/// the list of scanned files (for `--verbose` / diagnostics).
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Finding>, Vec<String>)> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))?;
        findings.extend(lint_source(rel, &source));
    }
    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.id().cmp(b.rule.id()))
    });
    Ok((findings, files))
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// The outcome of applying the allowlist to a raw finding set.
pub struct Applied {
    /// Findings not covered by any allowlist entry (these fail the gate).
    pub unsuppressed: Vec<Finding>,
    /// Count of findings absorbed by baseline entries.
    pub suppressed: usize,
    /// Allowlist entries that matched nothing (stale — surfaced as warnings
    /// so the baseline only ever shrinks).
    pub unused_entries: Vec<allow::AllowEntry>,
}

pub fn apply_allowlist(findings: Vec<Finding>, entries: &[allow::AllowEntry]) -> Applied {
    use std::collections::HashMap;
    let mut groups: HashMap<(Rule, String), Vec<Finding>> = HashMap::new();
    for f in findings {
        groups.entry((f.rule, f.file.clone())).or_default().push(f);
    }
    let mut unsuppressed = Vec::new();
    let mut suppressed = 0usize;
    let mut used = vec![false; entries.len()];
    for ((rule, file), group) in groups {
        let entry = entries
            .iter()
            .enumerate()
            .find(|(_, e)| e.rule == rule && e.path == file);
        match entry {
            Some((idx, e)) => {
                used[idx] = true;
                if group.len() <= e.max {
                    suppressed += group.len();
                } else {
                    // Over baseline: every finding in the group is reported so
                    // the offending new site is visible among its peers.
                    for mut f in group {
                        f.message = format!(
                            "{} [file exceeds `lint-allow.toml` baseline: {} findings > max {}]",
                            f.message,
                            e.max + 1, // at least this many
                            e.max
                        );
                        unsuppressed.push(f);
                    }
                }
            }
            None => unsuppressed.extend(group),
        }
    }
    let unused_entries = entries
        .iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    unsuppressed.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.id().cmp(b.rule.id()))
    });
    Applied {
        unsuppressed,
        suppressed,
        unused_entries,
    }
}

/// Render findings as the stable machine-readable JSON document consumed by
/// CI tooling. Schema (version 1):
/// `{"version":1,"clean":bool,"total":N,"suppressed":N,
///   "findings":[{"rule","rule_name","file","line","message"}]}`
pub fn render_json(applied: &Applied) -> String {
    let mut out = String::from("{");
    out.push_str("\"version\":1,");
    out.push_str(&format!("\"clean\":{},", applied.unsuppressed.is_empty()));
    out.push_str(&format!("\"total\":{},", applied.unsuppressed.len()));
    out.push_str(&format!("\"suppressed\":{},", applied.suppressed));
    out.push_str("\"findings\":[");
    for (i, f) in applied.unsuppressed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"rule_name\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_str(f.rule.id()),
            json_str(f.rule.name()),
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        ));
    }
    out.push_str("]}");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
