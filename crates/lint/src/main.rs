//! `xtrapulp-lint` — the workspace static-analysis gate. See LINT.md for the
//! rule catalogue.
//!
//! ```text
//! xtrapulp-lint [--root DIR] [--allow FILE | --no-allow] [--json]
//!               [--write-baseline] [--verbose]
//! ```
//!
//! Exit codes: 0 = clean, 1 = unsuppressed findings, 2 = usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;
use xtrapulp_lint::{allow, apply_allowlist, lint_workspace, render_json};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let mut no_allow = false;
    let mut json = false;
    let mut write_baseline = false;
    let mut verbose = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--allow" => match args.next() {
                Some(v) => allow_path = Some(PathBuf::from(v)),
                None => return usage("--allow needs a value"),
            },
            "--no-allow" => no_allow = true,
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--verbose" => verbose = true,
            "--help" | "-h" => {
                eprintln!(
                    "xtrapulp-lint: workspace static analysis (rules R1-R5, see LINT.md)\n\
                     usage: xtrapulp-lint [--root DIR] [--allow FILE | --no-allow] [--json]\n\
                     \x20                    [--write-baseline] [--verbose]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let (findings, files) = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtrapulp-lint: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if verbose {
        eprintln!(
            "xtrapulp-lint: scanned {} files under {}",
            files.len(),
            root.display()
        );
    }

    if write_baseline {
        let path = root.join("lint-allow.toml");
        let text = allow::write_baseline(&findings);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("xtrapulp-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "xtrapulp-lint: wrote baseline covering {} findings to {}",
            findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let entries = if no_allow {
        Vec::new()
    } else {
        let explicit = allow_path.is_some();
        let path = allow_path.unwrap_or_else(|| root.join("lint-allow.toml"));
        match std::fs::read_to_string(&path) {
            Ok(text) => match allow::parse(&text) {
                Ok(entries) => entries,
                Err(e) => {
                    eprintln!("xtrapulp-lint: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(_) if !explicit => Vec::new(), // no default baseline yet
            Err(e) => {
                eprintln!("xtrapulp-lint: reading allowlist: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let applied = apply_allowlist(findings, &entries);
    for stale in &applied.unused_entries {
        eprintln!(
            "xtrapulp-lint: warning: stale lint-allow.toml entry ({} {}) matched nothing — \
             remove it",
            stale.rule.id(),
            stale.path
        );
    }

    if json {
        println!("{}", render_json(&applied));
    } else {
        for f in &applied.unsuppressed {
            println!("{f}");
        }
        eprintln!(
            "xtrapulp-lint: {} finding(s), {} baselined",
            applied.unsuppressed.len(),
            applied.suppressed
        );
    }

    if applied.unsuppressed.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("xtrapulp-lint: {msg} (try --help)");
    ExitCode::from(2)
}
