//! The committed `lint-allow.toml` baseline: a hand-rolled parser for the
//! small TOML subset the allowlist uses, plus the baseline writer behind
//! `--write-baseline`.
//!
//! Format — one `[[allow]]` table per (rule, file) group:
//!
//! ```toml
//! [[allow]]
//! rule = "R5"
//! path = "crates/serve/src/worker.rs"
//! max = 12
//! reason = "pre-existing unwraps; burn down incrementally"
//! ```
//!
//! `max` caps the number of findings the entry absorbs: adding a new
//! violation to an already-baselined file still fails the gate. Entries that
//! match nothing are reported as stale so the baseline only ever shrinks.

use crate::{Finding, Rule};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: Rule,
    pub path: String,
    pub max: usize,
    pub reason: String,
}

#[derive(Debug)]
pub enum AllowError {
    Parse { line: usize, detail: String },
}

impl std::fmt::Display for AllowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllowError::Parse { line, detail } => {
                write!(f, "lint-allow.toml:{line}: {detail}")
            }
        }
    }
}

pub fn parse(text: &str) -> Result<Vec<AllowEntry>, AllowError> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<(usize, BTreeMap<String, String>)> = None;

    let flush = |current: &mut Option<(usize, BTreeMap<String, String>)>,
                 entries: &mut Vec<AllowEntry>|
     -> Result<(), AllowError> {
        if let Some((start, map)) = current.take() {
            let get = |k: &str| -> Result<&String, AllowError> {
                map.get(k).ok_or(AllowError::Parse {
                    line: start,
                    detail: format!("[[allow]] entry missing required key `{k}`"),
                })
            };
            let rule_s = get("rule")?;
            let rule = Rule::from_id(rule_s).ok_or(AllowError::Parse {
                line: start,
                detail: format!("unknown rule id `{rule_s}` (expected R1..R5)"),
            })?;
            let max: usize = get("max")?.parse().map_err(|_| AllowError::Parse {
                line: start,
                detail: "`max` must be a non-negative integer".to_string(),
            })?;
            entries.push(AllowEntry {
                rule,
                path: get("path")?.clone(),
                max,
                reason: map.get("reason").cloned().unwrap_or_default(),
            });
        }
        Ok(())
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            flush(&mut current, &mut entries)?;
            current = Some((lineno, BTreeMap::new()));
        } else if let Some(eq) = line.find('=') {
            let key = line[..eq].trim().to_string();
            let value = parse_value(line[eq + 1..].trim()).ok_or(AllowError::Parse {
                line: lineno,
                detail: format!("unparseable value for `{key}`"),
            })?;
            match &mut current {
                Some((_, map)) => {
                    map.insert(key, value);
                }
                None => {
                    return Err(AllowError::Parse {
                        line: lineno,
                        detail: "key/value outside an [[allow]] table".to_string(),
                    })
                }
            }
        } else {
            return Err(AllowError::Parse {
                line: lineno,
                detail: format!("unrecognised line: `{line}`"),
            });
        }
    }
    flush(&mut current, &mut entries)?;
    Ok(entries)
}

fn strip_comment(line: &str) -> &str {
    // A `#` outside a quoted string starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str) -> Option<String> {
    if let Some(stripped) = v.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(stripped[..end].to_string())
    } else if v.chars().all(|c| c.is_ascii_digit()) && !v.is_empty() {
        Some(v.to_string())
    } else {
        None
    }
}

/// Serialise a baseline covering `findings`, grouped by (rule, file), each
/// entry capped at the current count so regressions still fail.
pub fn write_baseline(findings: &[Finding]) -> String {
    let mut groups: BTreeMap<(&'static str, String), usize> = BTreeMap::new();
    for f in findings {
        *groups.entry((f.rule.id(), f.file.clone())).or_default() += 1;
    }
    let mut out = String::from(
        "# lint-allow.toml — committed baseline for `xtrapulp-lint`.\n\
         #\n\
         # Each [[allow]] entry absorbs up to `max` findings of `rule` in `path`;\n\
         # a new violation in a baselined file still fails the gate. Prefer fixing\n\
         # or annotating over growing this file (see LINT.md); regenerate a fresh\n\
         # baseline with `cargo run -p xtrapulp-lint -- --write-baseline` only when\n\
         # adopting a new rule.\n\n",
    );
    for ((rule, path), count) in groups {
        out.push_str("[[allow]]\n");
        out.push_str(&format!("rule = \"{rule}\"\n"));
        out.push_str(&format!("path = \"{path}\"\n"));
        out.push_str(&format!("max = {count}\n"));
        out.push_str("reason = \"baseline at lint adoption; burn down, do not grow\"\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_write() {
        let findings = vec![
            Finding::new(Rule::R5PanicHygiene, "a/b.rs", 3, "x".into()),
            Finding::new(Rule::R5PanicHygiene, "a/b.rs", 9, "y".into()),
            Finding::new(Rule::R2AtomicOrdering, "c.rs", 1, "z".into()),
        ];
        let text = write_baseline(&findings);
        let entries = parse(&text).expect("baseline parses");
        assert_eq!(entries.len(), 2);
        let r5 = entries
            .iter()
            .find(|e| e.rule == Rule::R5PanicHygiene)
            .unwrap();
        assert_eq!(r5.path, "a/b.rs");
        assert_eq!(r5.max, 2);
    }

    #[test]
    fn rejects_unknown_rule_and_stray_keys() {
        assert!(parse("[[allow]]\nrule = \"R9\"\npath = \"x\"\nmax = 1\n").is_err());
        assert!(parse("rule = \"R1\"\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\n[[allow]]\nrule = \"R1\" # trailing\npath = \"p.rs\"\nmax = 0\n";
        let entries = parse(text).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].max, 0);
    }
}
