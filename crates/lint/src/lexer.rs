//! A hand-rolled Rust lexer: just enough token structure for the rule engine.
//!
//! The lexer deliberately does not try to be a full Rust grammar. It produces
//! a flat token stream (identifiers, punctuation, a few multi-char operators)
//! with line numbers, plus a side table of line comments so the rules can
//! check for justification annotations (`// ordering: ...`,
//! `// lint: <tag> — <why>`). String/char/byte literals, lifetimes, block
//! comments and numbers are consumed correctly (so braces inside a format
//! string never unbalance the scope tracker) but carry no payload.

use std::collections::{BTreeMap, HashSet};

/// One lexical token. `Lit` covers string/char/byte/numeric literals whose
/// content the rules never inspect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    /// Single-character punctuation: `{ } ( ) [ ] . , ; # ! & | = < > ...`
    Punct(char),
    /// Multi-character operators the rules care about: `::`, `->`, `=>`.
    Op(&'static str),
    Lit,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
}

impl Token {
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        matches!(self.tok, Tok::Punct(p) if p == c)
    }

    pub fn is_op(&self, s: &str) -> bool {
        matches!(self.tok, Tok::Op(o) if o == s)
    }
}

/// Lexer output: the token stream plus the comment side tables used for
/// annotation lookup.
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// line -> concatenated text of every `//` comment starting on that line.
    pub comments: BTreeMap<usize, String>,
    /// Lines that contain at least one non-comment token (so a comment line
    /// can be distinguished from a trailing comment).
    pub code_lines: HashSet<usize>,
}

impl Lexed {
    /// The justification comment attached to `line`: a trailing comment on
    /// the same line, or the comment block immediately above it (walking up
    /// through consecutive comment-only lines).
    pub fn annotation_text(&self, line: usize) -> Option<String> {
        if let Some(c) = self.comments.get(&line) {
            return Some(c.clone());
        }
        // Walk upwards through comment-only lines.
        let mut l = line;
        let mut collected: Vec<&str> = Vec::new();
        while l > 1 {
            l -= 1;
            match self.comments.get(&l) {
                Some(c) if !self.code_lines.contains(&l) => collected.push(c.as_str()),
                _ => break,
            }
        }
        if collected.is_empty() {
            None
        } else {
            collected.reverse();
            Some(collected.join(" "))
        }
    }
}

pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut comments: BTreeMap<usize, String> = BTreeMap::new();
    let mut code_lines = HashSet::new();
    let mut i = 0usize;
    let mut line = 1usize;

    macro_rules! push {
        ($tok:expr) => {{
            code_lines.insert(line);
            tokens.push(Token { tok: $tok, line });
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment (incl. doc comments). Record its text.
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = &source[start..i];
                let entry = comments.entry(line).or_default();
                if !entry.is_empty() {
                    entry.push(' ');
                }
                entry.push_str(text);
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, possibly nested.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i = consume_string(bytes, i, &mut line);
                push!(Tok::Lit);
            }
            'r' | 'b' if starts_raw_or_byte_string(bytes, i) => {
                i = consume_prefixed_string(bytes, i, &mut line);
                push!(Tok::Lit);
            }
            '\'' => {
                // Char literal or lifetime.
                if is_lifetime(bytes, i) {
                    i += 1;
                    while i < bytes.len() && is_ident_char(bytes[i]) {
                        i += 1;
                    }
                    push!(Tok::Lit);
                } else {
                    i = consume_char_literal(bytes, i);
                    push!(Tok::Lit);
                }
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len() && (is_ident_char(bytes[i]) || bytes[i] == b'.') {
                    // Stop a float scan from eating a method call: `1.max(2)`.
                    if bytes[i] == b'.' && bytes.get(i + 1).is_some_and(|b| !b.is_ascii_digit()) {
                        break;
                    }
                    i += 1;
                }
                push!(Tok::Lit);
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                push!(Tok::Ident(source[start..i].to_string()));
            }
            ':' if bytes.get(i + 1) == Some(&b':') => {
                push!(Tok::Op("::"));
                i += 2;
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                push!(Tok::Op("->"));
                i += 2;
            }
            '=' if bytes.get(i + 1) == Some(&b'>') => {
                push!(Tok::Op("=>"));
                i += 2;
            }
            c => {
                push!(Tok::Punct(c));
                i += 1;
            }
        }
    }

    Lexed {
        tokens,
        comments,
        code_lines,
    }
}

fn is_ident_char(b: u8) -> bool {
    b == b'_' || (b as char).is_alphanumeric()
}

/// `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`?
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
        while j < bytes.len() && bytes[j] == b'#' {
            j += 1;
        }
    }
    // A plain `b"..."` (no `r`) is also a prefixed string.
    j < bytes.len() && bytes[j] == b'"' && j > i
}

fn consume_prefixed_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    let mut raw = false;
    if bytes[i] == b'b' {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'r' {
        raw = true;
        i += 1;
    }
    let mut hashes = 0;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if raw {
        // Raw string: ends at `"` followed by `hashes` hashes; no escapes.
        i += 1; // opening quote
        while i < bytes.len() {
            if bytes[i] == b'\n' {
                *line += 1;
            }
            if bytes[i] == b'"' {
                let mut j = i + 1;
                let mut seen = 0;
                while j < bytes.len() && bytes[j] == b'#' && seen < hashes {
                    j += 1;
                    seen += 1;
                }
                if seen == hashes {
                    return j;
                }
            }
            i += 1;
        }
        i
    } else {
        consume_string(bytes, i, line)
    }
}

fn consume_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn consume_char_literal(bytes: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    if i < bytes.len() && bytes[i] == b'\\' {
        i += 2;
    } else {
        i += 1;
    }
    // Multi-byte chars ('é'): scan to the closing quote defensively.
    while i < bytes.len() && bytes[i] != b'\'' {
        i += 1;
    }
    i + 1
}

/// `'a` (lifetime) vs `'a'` (char literal): a lifetime's ident is not
/// followed by a closing quote.
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    if j >= bytes.len() || bytes[j] == b'\\' {
        return false;
    }
    if !is_ident_char(bytes[j]) {
        return false;
    }
    while j < bytes.len() && is_ident_char(bytes[j]) {
        j += 1;
    }
    j >= bytes.len() || bytes[j] != b'\''
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(|s| s.to_string()))
            .collect()
    }

    #[test]
    fn strings_and_chars_do_not_leak_tokens() {
        let src = r##"let s = "if rank { }"; let c = '{'; let l: &'static str = r#"x " y"#;"##;
        let ids = idents(src);
        assert!(!ids.contains(&"rank".to_string()));
        let braces = lex(src)
            .tokens
            .iter()
            .filter(|t| t.is_punct('{') || t.is_punct('}'))
            .count();
        assert_eq!(braces, 0);
    }

    #[test]
    fn trailing_and_preceding_annotations_resolve() {
        let src = "// lint: panic-ok — startup\nfoo.unwrap(); // ordering: hot path\n";
        let lexed = lex(src);
        assert!(lexed.annotation_text(2).unwrap().contains("ordering:"));
        // Line 2's own trailing comment wins, but a bare line 3 would see it.
        let src2 = "// lint: panic-ok — startup\nfoo.unwrap();\n";
        let lexed2 = lex(src2);
        assert!(lexed2.annotation_text(2).unwrap().contains("panic-ok"));
    }

    #[test]
    fn float_literal_does_not_eat_method_call() {
        let ids = idents("let x = 1.5; let y = 2.max(3);");
        assert!(ids.contains(&"max".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.contains(&"str".to_string()));
        let braces = lex("fn f<'a>(x: &'a str) { }")
            .tokens
            .iter()
            .filter(|t| t.is_punct('{'))
            .count();
        assert_eq!(braces, 1);
    }
}
