//! Partition quality metrics.
//!
//! The paper evaluates partitions with two architecture-independent metrics: the **edge
//! cut ratio** (cut edges divided by total edges) and the **scaled max cut ratio** (the
//! largest per-part cut divided by the average number of edges per part), plus the vertex
//! and edge balance constraints. §V-B additionally aggregates results across a test suite
//! with geometric-mean "performance ratios". This module computes all of them, both from
//! a global [`Csr`] + part vector and collectively from a [`DistGraph`].

use serde::{Deserialize, Serialize};
use xtrapulp_comm::RankCtx;
use xtrapulp_graph::{Csr, DistGraph, LocalId};

/// Quality summary of one partition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionQuality {
    /// Number of parts.
    pub num_parts: usize,
    /// Number of cut (inter-part) undirected edges.
    pub edge_cut: u64,
    /// `edge_cut / total_edges`; the paper's primary quality metric (lower is better).
    pub edge_cut_ratio: f64,
    /// Largest number of cut edges incident to any single part.
    pub max_part_cut: u64,
    /// `max_part_cut / (m / p)`; the paper's second objective (lower is better).
    pub scaled_max_cut_ratio: f64,
    /// `max_k |V(k)| / (n / p)`; 1.0 is perfect balance, the constraint allows
    /// `1 + vertex_imbalance`.
    pub vertex_imbalance: f64,
    /// `max_k degree_sum(k) / (2m / p)`; the edge-balance constraint measure.
    pub edge_imbalance: f64,
}

impl PartitionQuality {
    /// Evaluate a partition of an in-memory graph. `parts[v]` must be a valid part id in
    /// `0..num_parts` for every vertex.
    pub fn evaluate(csr: &Csr, parts: &[i32], num_parts: usize) -> PartitionQuality {
        assert_eq!(
            parts.len(),
            csr.num_vertices(),
            "one part id per vertex required"
        );
        assert!(num_parts >= 1);
        let mut part_vertices = vec![0u64; num_parts];
        let mut part_arcs = vec![0u64; num_parts];
        let mut part_cut = vec![0u64; num_parts];
        let mut cut = 0u64;
        for v in 0..csr.num_vertices() as u64 {
            let pv = parts[v as usize];
            assert!(
                pv >= 0 && (pv as usize) < num_parts,
                "vertex {v} has invalid part {pv}"
            );
            part_vertices[pv as usize] += 1;
            part_arcs[pv as usize] += csr.degree(v);
            for &u in csr.neighbors(v) {
                let pu = parts[u as usize];
                if pu != pv {
                    // Each cut edge is visited from both endpoints; count it once globally
                    // (u < v guard) but charge it to both parts' cut counters.
                    if v < u {
                        cut += 1;
                    }
                    part_cut[pv as usize] += 1;
                }
            }
        }
        // part_cut currently counts cut *arcs* from each part's side, which equals the
        // number of cut edges incident to the part (each such edge contributes exactly one
        // arc whose source lies in the part).
        Self::from_counts(
            csr.num_vertices() as u64,
            csr.num_edges(),
            num_parts,
            cut,
            &part_vertices,
            &part_arcs,
            &part_cut,
        )
    }

    /// Evaluate a partition of a distributed graph collectively. `parts` covers owned +
    /// ghost vertices of this rank; every rank receives the same (global) result.
    pub fn evaluate_dist(
        ctx: &RankCtx,
        graph: &DistGraph,
        parts: &[i32],
        num_parts: usize,
    ) -> PartitionQuality {
        assert!(parts.len() >= graph.n_total());
        let mut part_vertices = vec![0u64; num_parts];
        let mut part_arcs = vec![0u64; num_parts];
        let mut part_cut = vec![0u64; num_parts];
        let mut cut2 = 0u64; // counts each cut edge twice (once from each endpoint)
        for v in 0..graph.n_owned() {
            let pv = parts[v];
            assert!(pv >= 0 && (pv as usize) < num_parts);
            part_vertices[pv as usize] += 1;
            part_arcs[pv as usize] += graph.degree_owned(v as LocalId);
            for &u in graph.neighbors(v as LocalId) {
                let pu = parts[u as usize];
                if pu != pv {
                    cut2 += 1;
                    part_cut[pv as usize] += 1;
                }
            }
        }
        let totals = {
            let mut local = Vec::with_capacity(1 + 3 * num_parts);
            local.push(cut2);
            local.extend_from_slice(&part_vertices);
            local.extend_from_slice(&part_arcs);
            local.extend_from_slice(&part_cut);
            ctx.allreduce_sum_u64(&local)
        };
        let cut = totals[0] / 2;
        let part_vertices = &totals[1..1 + num_parts];
        let part_arcs = &totals[1 + num_parts..1 + 2 * num_parts];
        let part_cut = &totals[1 + 2 * num_parts..1 + 3 * num_parts];
        Self::from_counts(
            graph.global_n(),
            graph.global_m(),
            num_parts,
            cut,
            part_vertices,
            part_arcs,
            part_cut,
        )
    }

    fn from_counts(
        n: u64,
        m: u64,
        num_parts: usize,
        cut: u64,
        part_vertices: &[u64],
        part_arcs: &[u64],
        part_cut: &[u64],
    ) -> PartitionQuality {
        let p = num_parts as f64;
        let max_part_cut = part_cut.iter().copied().max().unwrap_or(0);
        let avg_edges_per_part = (m as f64 / p).max(1.0);
        let avg_vertices_per_part = (n as f64 / p).max(1.0);
        let avg_arcs_per_part = (2.0 * m as f64 / p).max(1.0);
        PartitionQuality {
            num_parts,
            edge_cut: cut,
            edge_cut_ratio: if m == 0 { 0.0 } else { cut as f64 / m as f64 },
            max_part_cut,
            scaled_max_cut_ratio: max_part_cut as f64 / avg_edges_per_part,
            vertex_imbalance: part_vertices.iter().copied().max().unwrap_or(0) as f64
                / avg_vertices_per_part,
            edge_imbalance: part_arcs.iter().copied().max().unwrap_or(0) as f64 / avg_arcs_per_part,
        }
    }
}

/// Check that a part vector is a valid assignment into `0..num_parts`.
pub fn is_valid_partition(parts: &[i32], num_parts: usize) -> bool {
    parts.iter().all(|&p| p >= 0 && (p as usize) < num_parts)
}

/// Geometric mean of a slice of positive values (used for the paper's "performance
/// ratio" aggregation). Returns 1.0 for an empty slice.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// The paper's performance-ratio aggregation: for each test, each method's metric is
/// divided by the best (smallest) metric achieved on that test; the ratios are then
/// combined with a geometric mean per method. A value of 1.0 means the method was best on
/// every test.
///
/// `results[test][method]` holds the metric of `method` on `test`. Tests where a method
/// has no result (`None`, e.g. ParMETIS running out of memory) are skipped for that
/// method.
pub fn performance_ratios(results: &[Vec<Option<f64>>], num_methods: usize) -> Vec<f64> {
    let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); num_methods];
    for test in results {
        assert_eq!(test.len(), num_methods);
        let best = test.iter().flatten().copied().fold(f64::INFINITY, f64::min);
        if !best.is_finite() {
            continue;
        }
        for (m, value) in test.iter().enumerate() {
            if let Some(v) = value {
                // Guard against zero cuts: ratio of equal zeros is 1.
                let ratio = if best <= 0.0 {
                    if *v <= 0.0 {
                        1.0
                    } else {
                        // Any positive value against a zero best: use the value itself +1
                        // to keep the ratio finite but penalising.
                        1.0 + *v
                    }
                } else {
                    v / best
                };
                per_method[m].push(ratio);
            }
        }
    }
    per_method.iter().map(|r| geometric_mean(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp_graph::csr_from_edges;

    /// Two triangles joined by a bridge; the natural 2-partition cuts one edge.
    fn two_triangles() -> Csr {
        csr_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
    }

    #[test]
    fn perfect_two_way_cut() {
        let csr = two_triangles();
        let parts = vec![0, 0, 0, 1, 1, 1];
        let q = PartitionQuality::evaluate(&csr, &parts, 2);
        assert_eq!(q.edge_cut, 1);
        assert!((q.edge_cut_ratio - 1.0 / 7.0).abs() < 1e-12);
        assert_eq!(q.max_part_cut, 1);
        assert!((q.vertex_imbalance - 1.0).abs() < 1e-12);
        // Each part has 7 arcs (degree sum); average is 7 -> imbalance 1.0.
        assert!((q.edge_imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_part_has_zero_cut() {
        let csr = two_triangles();
        let parts = vec![0; 6];
        let q = PartitionQuality::evaluate(&csr, &parts, 1);
        assert_eq!(q.edge_cut, 0);
        assert_eq!(q.edge_cut_ratio, 0.0);
        assert_eq!(q.max_part_cut, 0);
    }

    #[test]
    fn fully_scattered_partition_cuts_everything() {
        let csr = two_triangles();
        let parts = vec![0, 1, 2, 3, 4, 5];
        let q = PartitionQuality::evaluate(&csr, &parts, 6);
        assert_eq!(q.edge_cut, 7);
        assert!((q.edge_cut_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalanced_partition_is_detected() {
        let csr = two_triangles();
        let parts = vec![0, 0, 0, 0, 0, 1];
        let q = PartitionQuality::evaluate(&csr, &parts, 2);
        assert!((q.vertex_imbalance - 5.0 / 3.0).abs() < 1e-12);
        assert!(q.edge_imbalance > 1.5);
    }

    #[test]
    #[should_panic(expected = "invalid part")]
    fn out_of_range_part_panics() {
        let csr = two_triangles();
        let parts = vec![0, 0, 0, 1, 1, 7];
        PartitionQuality::evaluate(&csr, &parts, 2);
    }

    #[test]
    fn distributed_and_serial_evaluation_agree() {
        use xtrapulp_comm::Runtime;
        use xtrapulp_graph::Distribution;
        let edges = vec![(0u64, 1u64), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)];
        let csr = csr_from_edges(6, &edges);
        let global_parts = vec![0, 0, 1, 1, 0, 1];
        let serial = PartitionQuality::evaluate(&csr, &global_parts, 2);
        let out = Runtime::run(3, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Cyclic, 6, &edges);
            let parts: Vec<i32> = (0..g.n_total() as LocalId)
                .map(|v| global_parts[g.global_id(v) as usize])
                .collect();
            PartitionQuality::evaluate_dist(ctx, &g, &parts, 2)
        });
        for q in out {
            assert_eq!(q.edge_cut, serial.edge_cut);
            assert!((q.edge_cut_ratio - serial.edge_cut_ratio).abs() < 1e-12);
            assert_eq!(q.max_part_cut, serial.max_part_cut);
            assert!((q.vertex_imbalance - serial.vertex_imbalance).abs() < 1e-12);
            assert!((q.edge_imbalance - serial.edge_imbalance).abs() < 1e-12);
        }
    }

    #[test]
    fn partition_validity_check() {
        assert!(is_valid_partition(&[0, 1, 2], 3));
        assert!(!is_valid_partition(&[0, -1, 2], 3));
        assert!(!is_valid_partition(&[0, 3], 3));
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[]) - 1.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn performance_ratio_aggregation() {
        // Two tests, two methods. Method 0 is best on both.
        let results = vec![vec![Some(10.0), Some(20.0)], vec![Some(5.0), Some(5.0)]];
        let ratios = performance_ratios(&results, 2);
        assert!((ratios[0] - 1.0).abs() < 1e-12);
        assert!((ratios[1] - (2.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn performance_ratio_skips_missing_results() {
        let results = vec![vec![Some(10.0), None], vec![Some(4.0), Some(8.0)]];
        let ratios = performance_ratios(&results, 2);
        assert!((ratios[0] - 1.0).abs() < 1e-12);
        assert!((ratios[1] - 2.0).abs() < 1e-12);
    }
}
