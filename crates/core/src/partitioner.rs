//! The XtraPuLP driver (Algorithm 1) and the serial [`Partitioner`] interface shared by
//! every partitioning method in the workspace.

use xtrapulp_comm::{PhaseTimer, RankCtx, Runtime};
use xtrapulp_graph::{Csr, DistGraph, Distribution, LocalId};

use crate::balance::{vertex_balance, vertex_refine, StageCounter};
use crate::baselines;
use crate::edge_balance::{edge_balance, edge_refine};
use crate::error::PartitionError;
use crate::init::init_partition;
use crate::metrics::PartitionQuality;
use crate::params::PartitionParams;

/// The outcome of one distributed XtraPuLP run on one rank.
#[derive(Debug, Clone)]
pub struct PartitionResult {
    /// Part labels for this rank's owned + ghost vertices (indexed by local id).
    pub parts: Vec<i32>,
    /// Global quality metrics (identical on every rank).
    pub quality: PartitionQuality,
    /// Wall-clock time per phase on this rank.
    pub timings: PhaseTimer,
}

impl PartitionResult {
    /// Part labels of the owned vertices only.
    pub fn owned_parts(&self, graph: &DistGraph) -> &[i32] {
        &self.parts[..graph.n_owned()]
    }
}

/// Run the full multi-constraint multi-objective XtraPuLP algorithm (Algorithm 1)
/// collectively on an already-distributed graph, rejecting malformed parameters with a
/// typed error.
///
/// Validation is deterministic, so every rank of a collective call returns the same
/// `Err` and no rank enters a collective the others skipped.
pub fn try_xtrapulp_partition(
    ctx: &RankCtx,
    graph: &DistGraph,
    params: &PartitionParams,
) -> Result<PartitionResult, PartitionError> {
    params.validate()?;
    Ok(xtrapulp_partition_validated(ctx, graph, params))
}

/// Run the full multi-constraint multi-objective XtraPuLP algorithm (Algorithm 1)
/// collectively on an already-distributed graph.
///
/// # Panics
///
/// Panics on invalid [`PartitionParams`]; request-path callers should prefer
/// [`try_xtrapulp_partition`] (or the `xtrapulp-api` session facade), which reports the
/// violation as a [`PartitionError`] instead.
pub fn xtrapulp_partition(
    ctx: &RankCtx,
    graph: &DistGraph,
    params: &PartitionParams,
) -> PartitionResult {
    match try_xtrapulp_partition(ctx, graph, params) {
        Ok(result) => result,
        Err(e) => panic!("xtrapulp_partition: {e}"),
    }
}

/// The algorithm body; `params` must already be validated.
fn xtrapulp_partition_validated(
    ctx: &RankCtx,
    graph: &DistGraph,
    params: &PartitionParams,
) -> PartitionResult {
    let mut timings = PhaseTimer::new();

    let mut parts = timings.time("init", || init_partition(ctx, graph, params));

    // Stage 1: vertex balance + refinement.
    let mut counter = StageCounter::default();
    timings.time("vertex_stage", || {
        for _ in 0..params.outer_iters {
            vertex_balance(ctx, graph, &mut parts, params, &mut counter);
            vertex_refine(ctx, graph, &mut parts, params, &mut counter);
        }
    });

    // Stage 2: edge balance + refinement (the "MM" in PuLP-MM). The iteration counter is
    // reset, as in Algorithm 1.
    if params.edge_balance_stage && params.num_parts > 1 {
        let mut counter = StageCounter::default();
        timings.time("edge_stage", || {
            for _ in 0..params.outer_iters {
                edge_balance(ctx, graph, &mut parts, params, &mut counter);
                edge_refine(ctx, graph, &mut parts, params, &mut counter);
            }
        });
    }

    let quality = timings.time("metrics", || {
        PartitionQuality::evaluate_dist(ctx, graph, &parts, params.num_parts)
    });

    PartitionResult {
        parts,
        quality,
        timings,
    }
}

/// A (serial-facing) graph partitioner: given a whole graph and parameters, produce one
/// part id per vertex. Implemented by XtraPuLP (which internally runs its rank
/// runtime), the PuLP baseline, the naive baselines, and the multilevel baselines in
/// `xtrapulp-multilevel`.
///
/// [`try_partition`](Partitioner::try_partition) is the required entry point and must
/// reject malformed input with a [`PartitionError`] rather than panicking — it is what a
/// serving layer calls with untrusted request parameters. The panicking
/// [`partition`](Partitioner::partition) / [`partition_with_quality`](Partitioner::partition_with_quality)
/// methods are default-implemented shims over it, kept so experiment harnesses and older
/// call sites that construct their own (trusted) parameters migrate incrementally.
pub trait Partitioner {
    /// Human-readable method name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Compute a partition: one part id (in `0..params.num_parts`) per vertex.
    ///
    /// Returns `Err` on malformed [`PartitionParams`] (see
    /// [`PartitionParams::validate`]) or when the method itself fails; never panics on
    /// bad input.
    fn try_partition(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> Result<Vec<i32>, PartitionError>;

    /// Compute a partition and evaluate its quality.
    fn try_partition_with_quality(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> Result<(Vec<i32>, PartitionQuality), PartitionError> {
        let parts = self.try_partition(csr, params)?;
        let quality = PartitionQuality::evaluate(csr, &parts, params.num_parts);
        Ok((parts, quality))
    }

    /// Compute a partition, panicking on failure (legacy shim over
    /// [`try_partition`](Partitioner::try_partition)).
    fn partition(&self, csr: &Csr, params: &PartitionParams) -> Vec<i32> {
        match self.try_partition(csr, params) {
            Ok(parts) => parts,
            Err(e) => panic!("{}: {e}", self.name()),
        }
    }

    /// Compute a partition and evaluate its quality, panicking on failure (legacy shim
    /// over [`try_partition_with_quality`](Partitioner::try_partition_with_quality)).
    fn partition_with_quality(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> (Vec<i32>, PartitionQuality) {
        match self.try_partition_with_quality(csr, params) {
            Ok(out) => out,
            Err(e) => panic!("{}: {e}", self.name()),
        }
    }
}

/// The distributed XtraPuLP partitioner, exposed through the serial [`Partitioner`]
/// interface: the input graph is distributed over `nranks` ranks with the configured
/// [`Distribution`], partitioned collectively, and the part vector gathered back.
#[derive(Debug, Clone)]
pub struct XtraPulpPartitioner {
    /// Number of ranks (threads standing in for MPI tasks) to run with.
    pub nranks: usize,
    /// Vertex ownership function used to distribute the input graph.
    pub distribution: Distribution,
}

impl Default for XtraPulpPartitioner {
    fn default() -> Self {
        XtraPulpPartitioner {
            nranks: 4,
            distribution: Distribution::Block,
        }
    }
}

impl XtraPulpPartitioner {
    /// Create a partitioner running on `nranks` ranks with a block distribution.
    pub fn new(nranks: usize) -> Self {
        XtraPulpPartitioner {
            nranks,
            distribution: Distribution::Block,
        }
    }

    /// Use a different vertex distribution.
    pub fn with_distribution(mut self, distribution: Distribution) -> Self {
        self.distribution = distribution;
        self
    }
}

/// Stitch per-rank `(global id, part)` pairs into one dense part vector, verifying that
/// every vertex was claimed by some rank and every claim is a valid `(vertex, part)`
/// pair for this graph and part count.
///
/// The old gather silently defaulted unclaimed vertices to part 0, which turned any
/// ownership bug in the distribution layer into a quietly imbalanced partition; now a
/// coverage gap surfaces as [`PartitionError::IncompleteGather`] and a nonsensical pair
/// (vertex id out of range, part negative or `>= num_parts`) as
/// [`PartitionError::CorruptGather`] — in release builds too, since this guards against
/// rank bugs, not caller mistakes. Shared with the `xtrapulp-api` session facade, which
/// runs the same gather on a reused runtime.
pub fn assemble_gathered_parts(
    n: usize,
    num_parts: usize,
    per_rank: Vec<Vec<(u64, i32)>>,
) -> Result<Vec<i32>, PartitionError> {
    const UNCLAIMED: i32 = -1;
    let mut parts = vec![UNCLAIMED; n];
    let mut assigned: u64 = 0;
    for rank_pairs in per_rank {
        for (g, p) in rank_pairs {
            if g >= n as u64 || p < 0 || p as usize >= num_parts {
                return Err(PartitionError::CorruptGather { vertex: g, part: p });
            }
            if parts[g as usize] == UNCLAIMED {
                assigned += 1;
            }
            parts[g as usize] = p;
        }
    }
    if assigned < n as u64 {
        return Err(PartitionError::IncompleteGather {
            missing: n as u64 - assigned,
        });
    }
    Ok(parts)
}

impl Partitioner for XtraPulpPartitioner {
    fn name(&self) -> &'static str {
        "XtraPuLP"
    }

    fn try_partition(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> Result<Vec<i32>, PartitionError> {
        params.validate()?;
        if self.nranks == 0 {
            return Err(PartitionError::InvalidRanks { got: 0 });
        }
        let n = csr.num_vertices();
        if n == 0 {
            return Ok(Vec::new());
        }
        let dist = self.distribution.clone();
        let per_rank: Vec<Vec<(u64, i32)>> = Runtime::run(self.nranks, |ctx| {
            let graph = DistGraph::from_csr(ctx, dist.clone(), csr);
            let result = xtrapulp_partition_validated(ctx, &graph, params);
            (0..graph.n_owned())
                .map(|v| (graph.global_id(v as LocalId), result.parts[v]))
                .collect()
        });
        assemble_gathered_parts(n, params.num_parts, per_rank)
    }
}

/// Uniform random assignment, exposed through the [`Partitioner`] interface.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomPartitioner;

impl Partitioner for RandomPartitioner {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn try_partition(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> Result<Vec<i32>, PartitionError> {
        params.validate()?;
        Ok(baselines::random_partition(
            csr.num_vertices() as u64,
            params.num_parts,
            params.seed,
        ))
    }
}

/// Contiguous vertex blocks, exposed through the [`Partitioner`] interface.
#[derive(Debug, Clone, Copy, Default)]
pub struct VertexBlockPartitioner;

impl Partitioner for VertexBlockPartitioner {
    fn name(&self) -> &'static str {
        "VertexBlock"
    }

    fn try_partition(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> Result<Vec<i32>, PartitionError> {
        params.validate()?;
        Ok(baselines::vertex_block_partition(
            csr.num_vertices() as u64,
            params.num_parts,
        ))
    }
}

/// Contiguous vertex blocks balanced by edge count, exposed through the [`Partitioner`]
/// interface.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeBlockPartitioner;

impl Partitioner for EdgeBlockPartitioner {
    fn name(&self) -> &'static str {
        "EdgeBlock"
    }

    fn try_partition(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> Result<Vec<i32>, PartitionError> {
        params.validate()?;
        Ok(baselines::edge_block_partition(csr, params.num_parts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::is_valid_partition;
    use xtrapulp_comm::Runtime;
    use xtrapulp_graph::csr_from_edges;

    fn grid_csr(w: u64, h: u64) -> Csr {
        let mut e = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let id = y * w + x;
                if x + 1 < w {
                    e.push((id, id + 1));
                }
                if y + 1 < h {
                    e.push((id, id + w));
                }
            }
        }
        csr_from_edges(w * h, &e)
    }

    #[test]
    fn distributed_partition_meets_constraints_on_a_grid() {
        let csr = grid_csr(20, 20);
        let edges: Vec<_> = csr.edges().collect();
        let out = Runtime::run(4, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 400, &edges);
            let params = PartitionParams {
                num_parts: 8,
                seed: 17,
                ..Default::default()
            };
            let res = xtrapulp_partition(ctx, &g, &params);
            assert!(is_valid_partition(&res.parts, 8));
            res.quality
        });
        let q = out[0];
        assert!(
            q.vertex_imbalance <= 1.30,
            "vertex imbalance {}",
            q.vertex_imbalance
        );
        // A 20x20 grid split 8 ways should cut well under half the edges.
        assert!(
            q.edge_cut_ratio < 0.5,
            "edge cut ratio {}",
            q.edge_cut_ratio
        );
        // Every rank reports identical quality.
        for qq in &out {
            assert_eq!(qq.edge_cut, q.edge_cut);
        }
    }

    #[test]
    fn serial_interface_produces_a_full_partition() {
        let csr = grid_csr(16, 16);
        let params = PartitionParams {
            num_parts: 4,
            seed: 3,
            ..Default::default()
        };
        let partitioner = XtraPulpPartitioner::new(3);
        let (parts, quality) = partitioner.partition_with_quality(&csr, &params);
        assert_eq!(parts.len(), 256);
        assert!(is_valid_partition(&parts, 4));
        assert!(quality.vertex_imbalance <= 1.35);
        assert!(quality.edge_cut_ratio < 0.6);
    }

    #[test]
    fn single_rank_single_part_is_trivial() {
        let csr = grid_csr(4, 4);
        let params = PartitionParams {
            num_parts: 1,
            ..Default::default()
        };
        let parts = XtraPulpPartitioner::new(1).partition(&csr, &params);
        assert!(parts.iter().all(|&p| p == 0));
    }

    #[test]
    fn empty_graph_returns_empty_partition() {
        let csr = csr_from_edges(0, &[]);
        let parts = XtraPulpPartitioner::new(2).partition(&csr, &PartitionParams::with_parts(4));
        assert!(parts.is_empty());
    }

    #[test]
    fn baseline_partitioners_are_valid() {
        let csr = grid_csr(10, 10);
        let params = PartitionParams::with_parts(5);
        for p in [
            &RandomPartitioner as &dyn Partitioner,
            &VertexBlockPartitioner,
            &EdgeBlockPartitioner,
        ] {
            let parts = p.partition(&csr, &params);
            assert_eq!(parts.len(), 100, "{}", p.name());
            assert!(is_valid_partition(&parts, 5), "{}", p.name());
        }
    }

    #[test]
    fn xtrapulp_beats_random_on_cut_quality() {
        let csr = grid_csr(16, 16);
        let params = PartitionParams {
            num_parts: 4,
            seed: 23,
            ..Default::default()
        };
        let (_, q_x) = XtraPulpPartitioner::new(2).partition_with_quality(&csr, &params);
        let (_, q_r) = RandomPartitioner.partition_with_quality(&csr, &params);
        assert!(
            q_x.edge_cut < q_r.edge_cut / 2,
            "XtraPuLP cut {} should be far below random cut {}",
            q_x.edge_cut,
            q_r.edge_cut
        );
    }

    #[test]
    fn timings_cover_all_phases() {
        let csr = grid_csr(8, 8);
        let edges: Vec<_> = csr.edges().collect();
        Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 64, &edges);
            let res = xtrapulp_partition(ctx, &g, &PartitionParams::with_parts(2));
            let phases: Vec<&str> = res.timings.iter().map(|(name, _)| name).collect();
            assert!(phases.contains(&"init"));
            assert!(phases.contains(&"vertex_stage"));
            assert!(phases.contains(&"edge_stage"));
        });
    }

    #[test]
    fn gather_assembly_rejects_gaps_and_corrupt_pairs() {
        // Full coverage assembles cleanly, later ranks win duplicates.
        let parts = assemble_gathered_parts(3, 4, vec![vec![(0, 1), (1, 2)], vec![(2, 0), (0, 2)]])
            .expect("full coverage");
        assert_eq!(parts, vec![2, 2, 0]);
        // A vertex no rank claimed is an IncompleteGather, not silently part 0.
        assert_eq!(
            assemble_gathered_parts(3, 4, vec![vec![(0, 1), (2, 1)]]),
            Err(PartitionError::IncompleteGather { missing: 1 })
        );
        // Negative parts and out-of-range vertex ids are corrupt, in release builds too.
        assert_eq!(
            assemble_gathered_parts(2, 4, vec![vec![(0, 0), (1, -1)]]),
            Err(PartitionError::CorruptGather {
                vertex: 1,
                part: -1
            })
        );
        assert_eq!(
            assemble_gathered_parts(2, 4, vec![vec![(0, 0), (5, 1)]]),
            Err(PartitionError::CorruptGather { vertex: 5, part: 1 })
        );
        // So is a part label at or above num_parts, which would otherwise surface as a
        // panic inside quality evaluation.
        assert_eq!(
            assemble_gathered_parts(2, 4, vec![vec![(0, 0), (1, 4)]]),
            Err(PartitionError::CorruptGather { vertex: 1, part: 4 })
        );
    }

    #[test]
    fn results_are_deterministic_for_fixed_seed_and_ranks() {
        let csr = grid_csr(12, 12);
        let params = PartitionParams {
            num_parts: 4,
            seed: 77,
            ..Default::default()
        };
        let a = XtraPulpPartitioner::new(2).partition(&csr, &params);
        let b = XtraPulpPartitioner::new(2).partition(&csr, &params);
        assert_eq!(a, b);
    }
}
