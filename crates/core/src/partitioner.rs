//! The XtraPuLP driver (Algorithm 1) and the serial [`Partitioner`] interface shared by
//! every partitioning method in the workspace.

use xtrapulp_comm::{PhaseTimer, RankCtx, Runtime};
use xtrapulp_graph::distribution::splitmix64;
use xtrapulp_graph::{Csr, DistGraph, Distribution, GlobalId, LocalId, UNASSIGNED};

use crate::balance::{final_rebalance, vertex_balance, vertex_refine, StageCounter};
use crate::baselines;
use crate::edge_balance::{edge_balance, edge_refine};
use crate::error::PartitionError;
use crate::exchange::{
    push_part_updates_marking, refresh_ghost_parts, GhostNeighborMap, PartUpdate,
};
use crate::init::init_partition;
use crate::metrics::PartitionQuality;
use crate::params::PartitionParams;
use crate::sweep::{RefineConvergence, StageBreakdown, SweepMode, SweepWorkspace};

/// The outcome of one distributed XtraPuLP run on one rank.
#[derive(Debug, Clone)]
pub struct PartitionResult {
    /// Part labels for this rank's owned + ghost vertices (indexed by local id).
    pub parts: Vec<i32>,
    /// Global quality metrics (identical on every rank).
    pub quality: PartitionQuality,
    /// Wall-clock time per phase on this rank.
    pub timings: PhaseTimer,
    /// Number of label-propagation sweeps executed across all stages (identical on every
    /// rank); warm starts run far fewer than from-scratch runs.
    pub lp_sweeps: u64,
    /// Number of vertices scored across all sweeps and ranks (identical on every rank):
    /// the real unit of label-propagation work, which the frontier-driven engine
    /// shrinks — `n · sweeps` for full sweeps, the sum of active-set sizes otherwise.
    pub vertices_scored: u64,
    /// The sweep/scored work split per schedule stage (refine / balance / churn),
    /// globally reduced so every rank reports the same breakdown: scored counts are
    /// summed over ranks, sweep counts are the per-rank maximum (a rank whose local
    /// frontier emptied skips — and does not count — the sweep).
    pub stages: StageBreakdown,
}

impl PartitionResult {
    /// Part labels of the owned vertices only.
    pub fn owned_parts(&self, graph: &DistGraph) -> &[i32] {
        &self.parts[..graph.n_owned()]
    }
}

/// Run the full multi-constraint multi-objective XtraPuLP algorithm (Algorithm 1)
/// collectively on an already-distributed graph, rejecting malformed parameters with a
/// typed error.
///
/// Validation is deterministic, so every rank of a collective call returns the same
/// `Err` and no rank enters a collective the others skipped.
pub fn try_xtrapulp_partition(
    ctx: &RankCtx,
    graph: &DistGraph,
    params: &PartitionParams,
) -> Result<PartitionResult, PartitionError> {
    params.validate()?;
    Ok(xtrapulp_partition_validated(ctx, graph, params))
}

/// Run the full multi-constraint multi-objective XtraPuLP algorithm (Algorithm 1)
/// collectively on an already-distributed graph.
///
/// # Panics
///
/// Panics on invalid [`PartitionParams`]; request-path callers should prefer
/// [`try_xtrapulp_partition`] (or the `xtrapulp-api` session facade), which reports the
/// violation as a [`PartitionError`] instead.
pub fn xtrapulp_partition(
    ctx: &RankCtx,
    graph: &DistGraph,
    params: &PartitionParams,
) -> PartitionResult {
    match try_xtrapulp_partition(ctx, graph, params) {
        Ok(result) => result,
        Err(e) => panic!("xtrapulp_partition: {e}"),
    }
}

/// The algorithm body; `params` must already be validated.
fn xtrapulp_partition_validated(
    ctx: &RankCtx,
    graph: &DistGraph,
    params: &PartitionParams,
) -> PartitionResult {
    let mut timings = PhaseTimer::new();
    let mut ws = SweepWorkspace::new(params.sweep_threads);
    ws.begin_run(graph.n_owned(), params.num_parts);
    let ghosts = GhostNeighborMap::build(graph);
    let parts = timings.time("init", || init_partition(ctx, graph, params));
    // Initialisation changed every label: every owned vertex starts active.
    ws.engine.frontier.seed_all(graph.n_owned());
    run_stages(
        ctx,
        graph,
        params,
        parts,
        params.outer_iters,
        params.outer_iters,
        true,
        timings,
        &mut ws,
        &ghosts,
    )
}

/// Run the full multi-constraint multi-objective XtraPuLP algorithm *warm-started* from
/// a previous part assignment, collectively on an already-distributed graph.
///
/// `initial_owned[v]` is the seed part of this rank's owned vertex `v` (local id), or
/// [`UNASSIGNED`] (`-1`) for vertices with no prior assignment — newly added vertices
/// after a graph mutation. Unassigned vertices adopt the majority part of their assigned
/// neighbours in level-synchronous rounds (deterministic across rank counts), then a
/// short schedule of [`PartitionParams::warm_outer_iters`] outer rounds refines the
/// result instead of the from-scratch `outer_iters`.
///
/// Warm-start validation is collective-safe: every rank validates its own slice and the
/// violation counts are summed, so all ranks agree on the outcome and no rank enters a
/// collective the others skipped.
pub fn try_xtrapulp_partition_from(
    ctx: &RankCtx,
    graph: &DistGraph,
    params: &PartitionParams,
    initial_owned: &[i32],
) -> Result<PartitionResult, PartitionError> {
    try_xtrapulp_partition_from_touched(ctx, graph, params, initial_owned, None)
}

/// [`try_xtrapulp_partition_from`] variant that also receives the *touched set* of the
/// mutation delta separating this epoch from the seed: the global ids of the endpoints
/// of inserted/deleted edges and of added vertices. The refinement frontier is seeded
/// from these vertices plus their one-hop neighbourhoods (ghost-mediated hops
/// included), so a warm run after a small delta scores only the delta region and stops
/// on empty-frontier convergence instead of running a fixed
/// [`PartitionParams::warm_outer_iters`] schedule. Every rank must pass the same
/// `touched` slice. Without it (`None`) the frontier is seeded conservatively from
/// every vertex.
pub fn try_xtrapulp_partition_from_touched(
    ctx: &RankCtx,
    graph: &DistGraph,
    params: &PartitionParams,
    initial_owned: &[i32],
    touched: Option<&[GlobalId]>,
) -> Result<PartitionResult, PartitionError> {
    params.validate()?;
    let local_error = validate_warm_start(graph.n_owned(), params.num_parts, initial_owned).err();
    let global_violations = ctx.allreduce_scalar_sum_u64(local_error.is_some() as u64);
    if global_violations > 0 {
        return Err(
            local_error.unwrap_or_else(|| PartitionError::InvalidWarmStart {
                detail: format!("{global_violations} rank(s) received an invalid warm-start slice"),
            }),
        );
    }

    let mut timings = PhaseTimer::new();
    let mut ws = SweepWorkspace::new(params.sweep_threads);
    ws.begin_run(graph.n_owned(), params.num_parts);
    let ghosts = GhostNeighborMap::build(graph);
    let parts = timings.time("warm_seed", || {
        warm_seed(ctx, graph, params, initial_owned, &mut ws, &ghosts)
    });
    // Warm runs skip the (aggressively label-churning) balance passes when the seeded
    // partition already satisfies both balance constraints — with the same slack as the
    // serial path, since a converged run routinely lands within rounding of the
    // fractional target (e.g. 221 vertices against a target of 220.0), which is noise,
    // not imbalance. When the delta meaningfully overshot a target, the warm run falls
    // back to the full cold stage schedule (balance needs several rounds to converge;
    // one round overshoots), still skipping initialisation. Computed collectively, so
    // every rank takes the same branch.
    let balance = {
        let p = params.num_parts;
        let imb_v = params.target_max_vertices(graph.global_n()) * crate::pulp::WARM_BALANCE_SLACK;
        let imb_e = params.target_max_arcs(2 * graph.global_m()) * crate::pulp::WARM_BALANCE_SLACK;
        crate::balance::global_vertex_counts(ctx, graph, &parts, p)
            .iter()
            .any(|&s| s as f64 > imb_v)
            || crate::balance::global_arc_counts(ctx, graph, &parts, p)
                .iter()
                .any(|&s| s as f64 > imb_e)
    };
    if params.sweep_mode == SweepMode::Frontier {
        if balance || touched.is_none() {
            // The fallback cold schedule (or a warm start with no delta information)
            // rescopes to the whole graph; the marks `warm_seed` left stay valid.
            ws.engine.frontier.seed_all(graph.n_owned());
        } else {
            // Scope the frontier to the delta: every touched vertex this rank knows
            // (owned or ghost) activates its owned neighbourhood; `warm_seed` already
            // marked the newly assigned vertices and their cross-rank neighbours.
            let n_owned = graph.n_owned();
            for &g in touched.unwrap_or(&[]) {
                if let Some(lid) = graph.local_id(g) {
                    if (lid as usize) < n_owned {
                        ws.engine.frontier.mark(lid);
                        for &u in graph.neighbors(lid) {
                            if (u as usize) < n_owned {
                                ws.engine.frontier.mark(u);
                            }
                        }
                    } else {
                        for &v in ghosts.owned_neighbors(lid as usize - n_owned) {
                            ws.engine.frontier.mark(v);
                        }
                    }
                }
            }
        }
    }
    let outer = if balance {
        params.outer_iters
    } else {
        params.warm_outer_iters
    };
    // The empty-frontier convergence loop may run extra rounds only when the frontier
    // is actually delta-scoped; a blind warm start (no touched set) keeps the legacy
    // `warm_outer_iters` round count.
    let warm_rounds_cap = if !balance && touched.is_some() {
        outer.max(params.outer_iters)
    } else {
        outer
    };
    Ok(run_stages(
        ctx,
        graph,
        params,
        parts,
        outer,
        warm_rounds_cap,
        balance,
        timings,
        &mut ws,
        &ghosts,
    ))
}

/// The shared balance/refine pipeline. Cold (and fallback-warm) runs execute `outer`
/// rounds of the vertex stage, then (when enabled) `outer` rounds of the edge stage,
/// then the explicit final rebalance pass and quality evaluation. Warm refine-only runs
/// (`balance == false`) iterate refinement until the frontier empties (capped), which is
/// what turns repartitioning cost into `O(active work)`.
#[allow(clippy::too_many_arguments)]
fn run_stages(
    ctx: &RankCtx,
    graph: &DistGraph,
    params: &PartitionParams,
    mut parts: Vec<i32>,
    outer: usize,
    warm_rounds_cap: usize,
    balance: bool,
    mut timings: PhaseTimer,
    ws: &mut SweepWorkspace,
    ghosts: &GhostNeighborMap,
) -> PartitionResult {
    let frontier_mode = params.sweep_mode == SweepMode::Frontier;
    // The dynamic multiplier ramps from `Y` to `X` over the stage schedule; normalise it
    // by the rounds actually run (warm starts run `warm_outer_iters`, not `outer_iters`)
    // so a short schedule still reaches the conservative end-of-run multiplier instead of
    // spending all its iterations in the low-multiplier regime and overshooting part
    // sizes collectively.
    let params = &PartitionParams {
        outer_iters: outer,
        ..*params
    };
    let mut lp_sweeps;
    if balance {
        // Stage 1: vertex balance + refinement.
        let mut counter = StageCounter::default();
        timings.time("vertex_stage", || {
            for _ in 0..outer {
                vertex_balance(ctx, graph, &mut parts, params, &mut counter, ws, ghosts);
                vertex_refine(
                    ctx,
                    graph,
                    &mut parts,
                    params,
                    &mut counter,
                    ws,
                    ghosts,
                    RefineConvergence::Polish,
                );
            }
        });
        lp_sweeps = counter.iter_tot as u64;

        // Stage 2: edge balance + refinement (the "MM" in PuLP-MM). The iteration
        // counter is reset, as in Algorithm 1.
        if params.edge_balance_stage && params.num_parts > 1 {
            let mut counter = StageCounter::default();
            timings.time("edge_stage", || {
                for _ in 0..outer {
                    edge_balance(ctx, graph, &mut parts, params, &mut counter, ws, ghosts);
                    edge_refine(
                        ctx,
                        graph,
                        &mut parts,
                        params,
                        &mut counter,
                        ws,
                        ghosts,
                        RefineConvergence::Polish,
                    );
                }
            });
            lp_sweeps += counter.iter_tot as u64;
        }

        // Label propagation can leave skewed graphs above the vertex target (the same
        // gap the multilevel drivers closed in PR 1 with an explicit rebalance); the
        // final rebalance pass drains any remaining overweight parts cut-awarely. A
        // no-op when the constraint already holds.
        timings.time("rebalance", || {
            final_rebalance(ctx, graph, &mut parts, params, ws, ghosts)
        });
    } else {
        // Warm refine-only run: the seed meets both balance targets, so only
        // refinement runs. Frontier mode iterates to empty-frontier convergence
        // (capped); full mode keeps the legacy fixed schedule.
        let mut counter = StageCounter::default();
        timings.time("vertex_stage", || {
            if outer == 0 {
                // Seed-only schedule: nothing to refine.
            } else if frontier_mode {
                // One refinement stage per round: with the edge stage enabled that is
                // `edge_refine`, whose admissibility (vertex, edge and cut caps) is a
                // superset of the vertex stage's and whose score rule is identical —
                // running `vertex_refine` first would consume the frontier to
                // convergence and leave the edge-capped pass nothing to check.
                for _ in 0..warm_rounds_cap {
                    let active =
                        ctx.allreduce_scalar_sum_u64(ws.engine.frontier.active_len() as u64);
                    if active == 0 {
                        break;
                    }
                    if params.edge_balance_stage && params.num_parts > 1 {
                        edge_refine(
                            ctx,
                            graph,
                            &mut parts,
                            params,
                            &mut counter,
                            ws,
                            ghosts,
                            RefineConvergence::FrontierOnly,
                        );
                    } else {
                        vertex_refine(
                            ctx,
                            graph,
                            &mut parts,
                            params,
                            &mut counter,
                            ws,
                            ghosts,
                            RefineConvergence::FrontierOnly,
                        );
                    }
                }
            } else {
                for _ in 0..outer {
                    vertex_refine(
                        ctx,
                        graph,
                        &mut parts,
                        params,
                        &mut counter,
                        ws,
                        ghosts,
                        RefineConvergence::FrontierOnly,
                    );
                }
                if params.edge_balance_stage && params.num_parts > 1 {
                    for _ in 0..outer {
                        edge_refine(
                            ctx,
                            graph,
                            &mut parts,
                            params,
                            &mut counter,
                            ws,
                            ghosts,
                            RefineConvergence::FrontierOnly,
                        );
                    }
                }
            }
        });
        lp_sweeps = counter.iter_tot as u64;
    }

    let quality = timings.time("metrics", || {
        PartitionQuality::evaluate_dist(ctx, graph, &parts, params.num_parts)
    });
    let vertices_scored = ctx.allreduce_scalar_sum_u64(ws.engine.stats.vertices_scored);

    // Per-stage telemetry: scored counts sum over ranks (each rank scored its own
    // vertices), sweep counts take the per-rank maximum (a rank whose local frontier
    // emptied skips — and does not count — the sweep), and the per-stage wall-clock
    // lands in the phase timer so `PartitionReport.timings` carries the breakdown.
    let stages = {
        let local = ws.engine.stats.stages;
        let sums = ctx.allreduce_sum_u64(&[
            local.refine_scored,
            local.balance_scored,
            local.churn_scored,
        ]);
        let maxs = ctx.allreduce_max_u64(&[
            local.refine_sweeps,
            local.balance_sweeps,
            local.churn_sweeps,
        ]);
        StageBreakdown {
            refine_sweeps: maxs[0],
            refine_scored: sums[0],
            balance_sweeps: maxs[1],
            balance_scored: sums[1],
            churn_sweeps: maxs[2],
            churn_scored: sums[2],
        }
    };
    timings.merge_max(&ws.engine.stage_timings());

    PartitionResult {
        parts,
        quality,
        timings,
        lp_sweeps,
        vertices_scored,
        stages,
    }
}

/// Extend the previous epoch's owned part labels to a full (owned + ghost) assignment:
/// ghosts are pulled from their owners, unassigned vertices adopt the majority part of
/// their assigned neighbours in level-synchronous rounds (ties towards the lowest part
/// id), and vertices with no assigned neighbour at all (new isolated vertices or whole
/// new components) fall back to a deterministic hash of their global id. Must be called
/// collectively.
fn warm_seed(
    ctx: &RankCtx,
    graph: &DistGraph,
    params: &PartitionParams,
    initial_owned: &[i32],
    ws: &mut SweepWorkspace,
    ghosts: &GhostNeighborMap,
) -> Vec<i32> {
    let p = params.num_parts;
    let n_owned = graph.n_owned();
    let mut parts = vec![UNASSIGNED; graph.n_total()];
    parts[..n_owned].copy_from_slice(initial_owned);
    refresh_ghost_parts(ctx, graph, &mut parts);

    // Every vertex assigned here counts as delta-touched: it and its neighbourhood
    // seed the warm refinement frontier (cross-rank neighbours are reached through the
    // marking exchange).
    let mark_assigned = |frontier: &mut crate::sweep::Frontier, v: LocalId| {
        frontier.mark(v);
        for &u in graph.neighbors(v) {
            if (u as usize) < n_owned {
                frontier.mark(u);
            }
        }
    };

    let mut scores = vec![0u64; p];
    loop {
        let mut updates: Vec<PartUpdate> = Vec::new();
        for v in 0..n_owned {
            if parts[v] != UNASSIGNED {
                continue;
            }
            for s in scores.iter_mut() {
                *s = 0;
            }
            let mut any = false;
            for &u in graph.neighbors(v as LocalId) {
                let pu = parts[u as usize];
                if pu != UNASSIGNED {
                    scores[pu as usize] += 1;
                    any = true;
                }
            }
            if any {
                let best = (0..p)
                    .max_by_key(|&i| (scores[i], std::cmp::Reverse(i)))
                    .unwrap();
                updates.push((v as LocalId, best as i32));
            }
        }
        // Level-synchronous: this round's adoptions become visible together.
        for &(v, w) in &updates {
            parts[v as usize] = w;
            mark_assigned(&mut ws.engine.frontier, v);
        }
        push_part_updates_marking(
            ctx,
            graph,
            &updates,
            &mut parts,
            ghosts,
            &mut ws.engine.frontier,
        );
        if ctx.allreduce_scalar_sum_u64(updates.len() as u64) == 0 {
            break;
        }
    }

    let mut leftovers: Vec<PartUpdate> = Vec::new();
    for (v, part) in parts.iter_mut().enumerate().take(n_owned) {
        if *part == UNASSIGNED {
            let w = (splitmix64(graph.global_id(v as LocalId) ^ params.seed) % p as u64) as i32;
            *part = w;
            leftovers.push((v as LocalId, w));
        }
    }
    for &(v, _) in &leftovers {
        mark_assigned(&mut ws.engine.frontier, v);
    }
    push_part_updates_marking(
        ctx,
        graph,
        &leftovers,
        &mut parts,
        ghosts,
        &mut ws.engine.frontier,
    );
    parts
}

/// A (serial-facing) graph partitioner: given a whole graph and parameters, produce one
/// part id per vertex. Implemented by XtraPuLP (which internally runs its rank
/// runtime), the PuLP baseline, the naive baselines, and the multilevel baselines in
/// `xtrapulp-multilevel`.
///
/// [`try_partition`](Partitioner::try_partition) is the required entry point and must
/// reject malformed input with a [`PartitionError`] rather than panicking — it is what a
/// serving layer calls with untrusted request parameters. The panicking
/// [`partition`](Partitioner::partition) / [`partition_with_quality`](Partitioner::partition_with_quality)
/// methods are default-implemented shims over it, kept so experiment harnesses and older
/// call sites that construct their own (trusted) parameters migrate incrementally.
pub trait Partitioner {
    /// Human-readable method name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Compute a partition: one part id (in `0..params.num_parts`) per vertex.
    ///
    /// Returns `Err` on malformed [`PartitionParams`] (see
    /// [`PartitionParams::validate`]) or when the method itself fails; never panics on
    /// bad input.
    fn try_partition(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> Result<Vec<i32>, PartitionError>;

    /// Compute a partition and evaluate its quality.
    fn try_partition_with_quality(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> Result<(Vec<i32>, PartitionQuality), PartitionError> {
        let parts = self.try_partition(csr, params)?;
        let quality = PartitionQuality::evaluate(csr, &parts, params.num_parts);
        Ok((parts, quality))
    }

    /// Compute a partition, panicking on failure (legacy shim over
    /// [`try_partition`](Partitioner::try_partition)).
    fn partition(&self, csr: &Csr, params: &PartitionParams) -> Vec<i32> {
        match self.try_partition(csr, params) {
            Ok(parts) => parts,
            Err(e) => panic!("{}: {e}", self.name()),
        }
    }

    /// Compute a partition and evaluate its quality, panicking on failure (legacy shim
    /// over [`try_partition_with_quality`](Partitioner::try_partition_with_quality)).
    fn partition_with_quality(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> (Vec<i32>, PartitionQuality) {
        match self.try_partition_with_quality(csr, params) {
            Ok(out) => out,
            Err(e) => panic!("{}: {e}", self.name()),
        }
    }
}

/// A partitioner that can be *warm-started* from a previous part vector — the property
/// that makes incremental repartitioning of mutating graphs cheap. Label-propagation
/// methods have it natively (the seed is just the initial labelling); multilevel methods
/// realise it as a refine-only pass over the finest level.
pub trait WarmStartPartitioner: Partitioner {
    /// Compute a partition seeded from `initial`, where `initial[v]` is the previous
    /// part of vertex `v` or [`UNASSIGNED`] (`-1`) for vertices without one (newly added
    /// vertices after a graph mutation). Unassigned vertices are assigned greedily;
    /// assigned vertices keep their part unless a short refinement schedule moves them.
    ///
    /// Returns `Err` on malformed parameters or a warm-start vector of the wrong length
    /// or with out-of-range labels; never panics on bad input.
    fn try_partition_from(
        &self,
        csr: &Csr,
        params: &PartitionParams,
        initial: &[i32],
    ) -> Result<Vec<i32>, PartitionError>;
}

/// Check a warm-start part vector: one entry per vertex, each either [`UNASSIGNED`]
/// (`-1`) or a valid part id. Shared by every [`WarmStartPartitioner`] implementation.
pub fn validate_warm_start(
    n: usize,
    num_parts: usize,
    initial: &[i32],
) -> Result<(), PartitionError> {
    if initial.len() != n {
        return Err(PartitionError::InvalidWarmStart {
            detail: format!("expected one entry per vertex ({n}), got {}", initial.len()),
        });
    }
    for (v, &x) in initial.iter().enumerate() {
        if x != UNASSIGNED && (x < 0 || x as usize >= num_parts) {
            return Err(PartitionError::InvalidWarmStart {
                detail: format!(
                    "vertex {v} has part {x}, expected -1 (unassigned) or 0..{num_parts}"
                ),
            });
        }
    }
    Ok(())
}

/// Greedily assign every [`UNASSIGNED`] vertex of a serial part vector: majority part
/// among already-assigned neighbours, with the smaller part winning ties, and the
/// globally least-loaded part as the fallback for vertices with no assigned neighbour.
/// Deterministic; earlier assignments in the sweep are visible to later vertices, so one
/// ascending pass suffices even for chains of new vertices.
pub fn greedy_seed_unassigned(csr: &Csr, parts: &mut [i32], num_parts: usize) {
    let mut size_v = vec![0i64; num_parts];
    for &x in parts.iter() {
        if x != UNASSIGNED {
            size_v[x as usize] += 1;
        }
    }
    let mut scores = vec![0u64; num_parts];
    for v in 0..csr.num_vertices() as u64 {
        if parts[v as usize] != UNASSIGNED {
            continue;
        }
        for s in scores.iter_mut() {
            *s = 0;
        }
        let mut any = false;
        for &u in csr.neighbors(v) {
            let pu = parts[u as usize];
            if pu != UNASSIGNED {
                scores[pu as usize] += 1;
                any = true;
            }
        }
        let best = if any {
            (0..num_parts)
                .max_by_key(|&i| {
                    (
                        scores[i],
                        std::cmp::Reverse(size_v[i]),
                        std::cmp::Reverse(i),
                    )
                })
                .unwrap()
        } else {
            (0..num_parts).min_by_key(|&i| (size_v[i], i)).unwrap()
        };
        parts[v as usize] = best as i32;
        size_v[best] += 1;
    }
}

/// The distributed XtraPuLP partitioner, exposed through the serial [`Partitioner`]
/// interface: the input graph is distributed over `nranks` ranks with the configured
/// [`Distribution`], partitioned collectively, and the part vector gathered back.
#[derive(Debug, Clone)]
pub struct XtraPulpPartitioner {
    /// Number of ranks (threads standing in for MPI tasks) to run with.
    pub nranks: usize,
    /// Vertex ownership function used to distribute the input graph.
    pub distribution: Distribution,
}

impl Default for XtraPulpPartitioner {
    fn default() -> Self {
        XtraPulpPartitioner {
            nranks: 4,
            distribution: Distribution::Block,
        }
    }
}

impl XtraPulpPartitioner {
    /// Create a partitioner running on `nranks` ranks with a block distribution.
    pub fn new(nranks: usize) -> Self {
        XtraPulpPartitioner {
            nranks,
            distribution: Distribution::Block,
        }
    }

    /// Use a different vertex distribution.
    pub fn with_distribution(mut self, distribution: Distribution) -> Self {
        self.distribution = distribution;
        self
    }
}

/// Stitch per-rank `(global id, part)` pairs into one dense part vector, verifying that
/// every vertex was claimed by some rank and every claim is a valid `(vertex, part)`
/// pair for this graph and part count.
///
/// The old gather silently defaulted unclaimed vertices to part 0, which turned any
/// ownership bug in the distribution layer into a quietly imbalanced partition; now a
/// coverage gap surfaces as [`PartitionError::IncompleteGather`] and a nonsensical pair
/// (vertex id out of range, part negative or `>= num_parts`) as
/// [`PartitionError::CorruptGather`] — in release builds too, since this guards against
/// rank bugs, not caller mistakes. Shared with the `xtrapulp-api` session facade, which
/// runs the same gather on a reused runtime.
pub fn assemble_gathered_parts(
    n: usize,
    num_parts: usize,
    per_rank: Vec<Vec<(u64, i32)>>,
) -> Result<Vec<i32>, PartitionError> {
    const UNCLAIMED: i32 = -1;
    let mut parts = vec![UNCLAIMED; n];
    let mut assigned: u64 = 0;
    for rank_pairs in per_rank {
        for (g, p) in rank_pairs {
            if g >= n as u64 || p < 0 || p as usize >= num_parts {
                return Err(PartitionError::CorruptGather { vertex: g, part: p });
            }
            if parts[g as usize] == UNCLAIMED {
                assigned += 1;
            }
            parts[g as usize] = p;
        }
    }
    if assigned < n as u64 {
        return Err(PartitionError::IncompleteGather {
            missing: n as u64 - assigned,
        });
    }
    Ok(parts)
}

impl Partitioner for XtraPulpPartitioner {
    fn name(&self) -> &'static str {
        "XtraPuLP"
    }

    fn try_partition(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> Result<Vec<i32>, PartitionError> {
        params.validate()?;
        if self.nranks == 0 {
            return Err(PartitionError::InvalidRanks { got: 0 });
        }
        let n = csr.num_vertices();
        if n == 0 {
            return Ok(Vec::new());
        }
        let dist = self.distribution.clone();
        let per_rank: Vec<Vec<(u64, i32)>> = Runtime::run(self.nranks, |ctx| {
            let graph = DistGraph::from_csr(ctx, dist.clone(), csr);
            let result = xtrapulp_partition_validated(ctx, &graph, params);
            (0..graph.n_owned())
                .map(|v| (graph.global_id(v as LocalId), result.parts[v]))
                .collect()
        });
        assemble_gathered_parts(n, params.num_parts, per_rank)
    }
}

impl WarmStartPartitioner for XtraPulpPartitioner {
    fn try_partition_from(
        &self,
        csr: &Csr,
        params: &PartitionParams,
        initial: &[i32],
    ) -> Result<Vec<i32>, PartitionError> {
        params.validate()?;
        if self.nranks == 0 {
            return Err(PartitionError::InvalidRanks { got: 0 });
        }
        validate_warm_start(csr.num_vertices(), params.num_parts, initial)?;
        let n = csr.num_vertices();
        if n == 0 {
            return Ok(Vec::new());
        }
        let dist = self.distribution.clone();
        let per_rank: Vec<Result<Vec<(u64, i32)>, PartitionError>> =
            Runtime::run(self.nranks, |ctx| {
                let graph = DistGraph::from_csr(ctx, dist.clone(), csr);
                let initial_owned: Vec<i32> = (0..graph.n_owned())
                    .map(|v| initial[graph.global_id(v as LocalId) as usize])
                    .collect();
                let result = try_xtrapulp_partition_from(ctx, &graph, params, &initial_owned)?;
                Ok((0..graph.n_owned())
                    .map(|v| (graph.global_id(v as LocalId), result.parts[v]))
                    .collect())
            });
        let per_rank: Vec<Vec<(u64, i32)>> = per_rank.into_iter().collect::<Result<_, _>>()?;
        assemble_gathered_parts(n, params.num_parts, per_rank)
    }
}

/// Uniform random assignment, exposed through the [`Partitioner`] interface.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomPartitioner;

impl Partitioner for RandomPartitioner {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn try_partition(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> Result<Vec<i32>, PartitionError> {
        params.validate()?;
        Ok(baselines::random_partition(
            csr.num_vertices() as u64,
            params.num_parts,
            params.seed,
        ))
    }
}

/// Contiguous vertex blocks, exposed through the [`Partitioner`] interface.
#[derive(Debug, Clone, Copy, Default)]
pub struct VertexBlockPartitioner;

impl Partitioner for VertexBlockPartitioner {
    fn name(&self) -> &'static str {
        "VertexBlock"
    }

    fn try_partition(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> Result<Vec<i32>, PartitionError> {
        params.validate()?;
        Ok(baselines::vertex_block_partition(
            csr.num_vertices() as u64,
            params.num_parts,
        ))
    }
}

/// Contiguous vertex blocks balanced by edge count, exposed through the [`Partitioner`]
/// interface.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeBlockPartitioner;

impl Partitioner for EdgeBlockPartitioner {
    fn name(&self) -> &'static str {
        "EdgeBlock"
    }

    fn try_partition(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> Result<Vec<i32>, PartitionError> {
        params.validate()?;
        Ok(baselines::edge_block_partition(csr, params.num_parts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::is_valid_partition;
    use xtrapulp_comm::Runtime;
    use xtrapulp_graph::csr_from_edges;

    fn grid_csr(w: u64, h: u64) -> Csr {
        let mut e = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let id = y * w + x;
                if x + 1 < w {
                    e.push((id, id + 1));
                }
                if y + 1 < h {
                    e.push((id, id + w));
                }
            }
        }
        csr_from_edges(w * h, &e)
    }

    #[test]
    fn distributed_partition_meets_constraints_on_a_grid() {
        let csr = grid_csr(20, 20);
        let edges: Vec<_> = csr.edges().collect();
        let out = Runtime::run(4, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 400, &edges);
            let params = PartitionParams {
                num_parts: 8,
                seed: 17,
                ..Default::default()
            };
            let res = xtrapulp_partition(ctx, &g, &params);
            assert!(is_valid_partition(&res.parts, 8));
            res.quality
        });
        let q = out[0];
        assert!(
            q.vertex_imbalance <= 1.30,
            "vertex imbalance {}",
            q.vertex_imbalance
        );
        // A 20x20 grid split 8 ways should cut well under half the edges.
        assert!(
            q.edge_cut_ratio < 0.5,
            "edge cut ratio {}",
            q.edge_cut_ratio
        );
        // Every rank reports identical quality.
        for qq in &out {
            assert_eq!(qq.edge_cut, q.edge_cut);
        }
    }

    #[test]
    fn serial_interface_produces_a_full_partition() {
        let csr = grid_csr(16, 16);
        let params = PartitionParams {
            num_parts: 4,
            seed: 3,
            ..Default::default()
        };
        let partitioner = XtraPulpPartitioner::new(3);
        let (parts, quality) = partitioner.partition_with_quality(&csr, &params);
        assert_eq!(parts.len(), 256);
        assert!(is_valid_partition(&parts, 4));
        assert!(quality.vertex_imbalance <= 1.35);
        assert!(quality.edge_cut_ratio < 0.6);
    }

    #[test]
    fn single_rank_single_part_is_trivial() {
        let csr = grid_csr(4, 4);
        let params = PartitionParams {
            num_parts: 1,
            ..Default::default()
        };
        let parts = XtraPulpPartitioner::new(1).partition(&csr, &params);
        assert!(parts.iter().all(|&p| p == 0));
    }

    #[test]
    fn empty_graph_returns_empty_partition() {
        let csr = csr_from_edges(0, &[]);
        let parts = XtraPulpPartitioner::new(2).partition(&csr, &PartitionParams::with_parts(4));
        assert!(parts.is_empty());
    }

    #[test]
    fn baseline_partitioners_are_valid() {
        let csr = grid_csr(10, 10);
        let params = PartitionParams::with_parts(5);
        for p in [
            &RandomPartitioner as &dyn Partitioner,
            &VertexBlockPartitioner,
            &EdgeBlockPartitioner,
        ] {
            let parts = p.partition(&csr, &params);
            assert_eq!(parts.len(), 100, "{}", p.name());
            assert!(is_valid_partition(&parts, 5), "{}", p.name());
        }
    }

    #[test]
    fn xtrapulp_beats_random_on_cut_quality() {
        let csr = grid_csr(16, 16);
        let params = PartitionParams {
            num_parts: 4,
            seed: 23,
            ..Default::default()
        };
        let (_, q_x) = XtraPulpPartitioner::new(2).partition_with_quality(&csr, &params);
        let (_, q_r) = RandomPartitioner.partition_with_quality(&csr, &params);
        assert!(
            q_x.edge_cut < q_r.edge_cut / 2,
            "XtraPuLP cut {} should be far below random cut {}",
            q_x.edge_cut,
            q_r.edge_cut
        );
    }

    #[test]
    fn timings_cover_all_phases() {
        let csr = grid_csr(8, 8);
        let edges: Vec<_> = csr.edges().collect();
        Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 64, &edges);
            let res = xtrapulp_partition(ctx, &g, &PartitionParams::with_parts(2));
            let phases: Vec<&str> = res.timings.iter().map(|(name, _)| name).collect();
            assert!(phases.contains(&"init"));
            assert!(phases.contains(&"vertex_stage"));
            assert!(phases.contains(&"edge_stage"));
        });
    }

    #[test]
    fn gather_assembly_rejects_gaps_and_corrupt_pairs() {
        // Full coverage assembles cleanly, later ranks win duplicates.
        let parts = assemble_gathered_parts(3, 4, vec![vec![(0, 1), (1, 2)], vec![(2, 0), (0, 2)]])
            .expect("full coverage");
        assert_eq!(parts, vec![2, 2, 0]);
        // A vertex no rank claimed is an IncompleteGather, not silently part 0.
        assert_eq!(
            assemble_gathered_parts(3, 4, vec![vec![(0, 1), (2, 1)]]),
            Err(PartitionError::IncompleteGather { missing: 1 })
        );
        // Negative parts and out-of-range vertex ids are corrupt, in release builds too.
        assert_eq!(
            assemble_gathered_parts(2, 4, vec![vec![(0, 0), (1, -1)]]),
            Err(PartitionError::CorruptGather {
                vertex: 1,
                part: -1
            })
        );
        assert_eq!(
            assemble_gathered_parts(2, 4, vec![vec![(0, 0), (5, 1)]]),
            Err(PartitionError::CorruptGather { vertex: 5, part: 1 })
        );
        // So is a part label at or above num_parts, which would otherwise surface as a
        // panic inside quality evaluation.
        assert_eq!(
            assemble_gathered_parts(2, 4, vec![vec![(0, 0), (1, 4)]]),
            Err(PartitionError::CorruptGather { vertex: 1, part: 4 })
        );
    }

    #[test]
    fn distributed_warm_start_matches_quality_with_fewer_sweeps() {
        let csr = grid_csr(20, 20);
        let edges: Vec<_> = csr.edges().collect();
        let params = PartitionParams {
            num_parts: 4,
            seed: 17,
            ..Default::default()
        };
        let out = Runtime::run(3, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 400, &edges);
            let cold = xtrapulp_partition(ctx, &g, &params);
            let warm = try_xtrapulp_partition_from(ctx, &g, &params, &cold.parts[..g.n_owned()])
                .expect("valid warm start");
            assert!(is_valid_partition(&warm.parts, 4));
            (cold.quality, cold.lp_sweeps, warm.quality, warm.lp_sweeps)
        });
        let (cold_q, cold_sweeps, warm_q, warm_sweeps) = out[0];
        assert!(
            warm_sweeps < cold_sweeps,
            "warm {warm_sweeps} should be fewer than cold {cold_sweeps}"
        );
        assert!(
            warm_q.edge_cut as f64 <= cold_q.edge_cut as f64 * 1.05,
            "warm cut {} vs cold {}",
            warm_q.edge_cut,
            cold_q.edge_cut
        );
        assert!(
            warm_q.vertex_imbalance <= 1.30,
            "warm imbalance {} (cold {})",
            warm_q.vertex_imbalance,
            cold_q.vertex_imbalance
        );
    }

    #[test]
    fn distributed_warm_start_fills_unassigned_and_is_rank_invariant() {
        let csr = grid_csr(12, 12);
        let edges: Vec<_> = csr.edges().collect();
        let params = PartitionParams {
            num_parts: 4,
            warm_outer_iters: 0, // seed-only: the outcome is the greedy assignment
            // Wide tolerances keep the lopsided seed inside the refine-only regime; a
            // balance-violating seed would trigger the full-schedule fallback, which is
            // legitimately rank-dependent.
            vertex_imbalance: 1.0,
            edge_imbalance: 1.0,
            seed: 23,
            ..Default::default()
        };
        // Block partition by rows, with one unassigned band in the middle.
        let initial: Vec<i32> = (0..144)
            .map(|v| match v / 36 {
                1 => UNASSIGNED,
                q => q,
            })
            .collect();
        let run = |nranks: usize| {
            let per_rank = Runtime::run(nranks, |ctx| {
                let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 144, &edges);
                let initial_owned: Vec<i32> = (0..g.n_owned())
                    .map(|v| initial[g.global_id(v as LocalId) as usize])
                    .collect();
                let res = try_xtrapulp_partition_from(ctx, &g, &params, &initial_owned).unwrap();
                (0..g.n_owned())
                    .map(|v| (g.global_id(v as LocalId), res.parts[v]))
                    .collect::<Vec<_>>()
            });
            assemble_gathered_parts(144, 4, per_rank).unwrap()
        };
        let one = run(1);
        let three = run(3);
        assert!(is_valid_partition(&one, 4));
        assert_eq!(
            one, three,
            "warm seeding must be invariant to the rank count"
        );
        // Already-assigned vertices keep their seed part under a seed-only schedule.
        for v in 0..144 {
            if initial[v] != UNASSIGNED {
                assert_eq!(one[v], initial[v]);
            }
        }
    }

    #[test]
    fn distributed_warm_start_rejects_bad_slices_collectively() {
        let csr = grid_csr(8, 8);
        let edges: Vec<_> = csr.edges().collect();
        let out = Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 64, &edges);
            let params = PartitionParams::with_parts(4);
            // Only rank 1's slice is malformed; every rank must still agree on Err.
            let initial = if ctx.rank() == 1 {
                vec![99i32; g.n_owned()]
            } else {
                vec![0i32; g.n_owned()]
            };
            try_xtrapulp_partition_from(ctx, &g, &params, &initial).is_err()
        });
        assert!(out.iter().all(|&e| e), "every rank must report the error");
    }

    #[test]
    fn serial_warm_start_interface_matches_collective_path() {
        let csr = grid_csr(16, 16);
        let params = PartitionParams {
            num_parts: 4,
            seed: 3,
            ..Default::default()
        };
        let partitioner = XtraPulpPartitioner::new(2);
        let cold = partitioner.partition(&csr, &params);
        let warm = partitioner
            .try_partition_from(&csr, &params, &cold)
            .expect("valid warm start");
        assert_eq!(warm.len(), 256);
        assert!(is_valid_partition(&warm, 4));
    }

    #[test]
    fn greedy_seed_and_validation_helpers() {
        let csr = grid_csr(4, 4);
        // Fully unassigned: the fallback spreads vertices over the least-loaded parts.
        let mut parts = vec![UNASSIGNED; 16];
        greedy_seed_unassigned(&csr, &mut parts, 4);
        assert!(is_valid_partition(&parts, 4));
        // Validation accepts -1 entries and rejects out-of-range ones.
        assert!(validate_warm_start(16, 4, &parts).is_ok());
        assert!(validate_warm_start(16, 4, &[UNASSIGNED; 16]).is_ok());
        assert!(validate_warm_start(15, 4, &parts).is_err());
        let mut bad = parts.clone();
        bad[0] = 4;
        assert!(validate_warm_start(16, 4, &bad).is_err());
        bad[0] = -2;
        assert!(validate_warm_start(16, 4, &bad).is_err());
    }

    #[test]
    fn results_are_deterministic_for_fixed_seed_and_ranks() {
        let csr = grid_csr(12, 12);
        let params = PartitionParams {
            num_parts: 4,
            seed: 77,
            ..Default::default()
        };
        let a = XtraPulpPartitioner::new(2).partition(&csr, &params);
        let b = XtraPulpPartitioner::new(2).partition(&csr, &params);
        assert_eq!(a, b);
    }
}
