//! # xtrapulp
//!
//! A Rust reproduction of **XtraPuLP** — the distributed-memory, label-propagation-based
//! graph partitioner of Slota, Rajamanickam, Devine and Madduri ("Partitioning
//! Trillion-edge Graphs in Minutes", IPDPS 2017) — together with the shared-memory PuLP
//! baseline and the naive block/random baselines the paper compares against.
//!
//! ## What the algorithm does
//!
//! XtraPuLP computes a `p`-way partition of an undirected graph under two balance
//! constraints (vertices per part and edges per part) while minimising two objectives
//! (total edge cut and the maximum per-part cut). It does so with three stages of
//! label-propagation-style sweeps over the vertices:
//!
//! 1. **Initialisation** ([`init`]): `p` random roots are grown breadth-first; unassigned
//!    vertices adopt a random neighbouring part.
//! 2. **Vertex stage** ([`balance`]): weighted label propagation drives part *vertex*
//!    counts towards balance, alternating with constrained refinement sweeps that reduce
//!    the cut.
//! 3. **Edge stage** ([`edge_balance`]): the same machinery driven by per-part *edge* and
//!    *cut* counts, yielding the multi-constraint, multi-objective result.
//!
//! The distributed-memory realisation keeps a one-dimensional vertex distribution
//! (see [`xtrapulp_graph::DistGraph`]), exchanges boundary labels with an
//! `Alltoallv`-based update queue ([`exchange`]), and throttles per-rank moves with the
//! dynamic multiplier described in the paper (see [`PartitionParams::multiplier`]).
//!
//! ## Entry points
//!
//! Most callers should go through the **`xtrapulp-api` facade** (re-exported as
//! `xtrapulp_suite::api`): its `Session` owns a persistent rank runtime that is reused
//! across jobs, its `Method` registry resolves any of the workspace's seven partitioning
//! methods by name, and every job returns a JSON-able `PartitionReport`. This crate
//! provides the kernel underneath:
//!
//! * [`Partitioner`] — the trait every method implements.
//!   [`try_partition`](Partitioner::try_partition) is the request-path entry point: it
//!   validates [`PartitionParams`] and reports failures as typed [`PartitionError`]s
//!   instead of panicking. The panicking `partition`/`partition_with_quality` shims
//!   remain for trusted harness code.
//! * [`try_xtrapulp_partition`] / [`xtrapulp_partition`] — collective calls over an
//!   already-distributed graph ([`DistGraph`]); this is what the scaling experiments use.
//! * [`XtraPulpPartitioner`] — [`Partitioner`] implementation that distributes an
//!   in-memory [`Csr`](xtrapulp_graph::Csr) over an internal rank runtime, partitions it,
//!   and gathers the result (failing with
//!   [`PartitionError::IncompleteGather`](error::PartitionError::IncompleteGather) if any
//!   vertex goes unclaimed); convenient for quality comparisons.
//! * [`PulpPartitioner`] — the shared-memory PuLP baseline.
//! * [`RandomPartitioner`], [`VertexBlockPartitioner`], [`EdgeBlockPartitioner`] — the
//!   naive baselines.
//! * [`metrics::PartitionQuality`] — the paper's quality metrics.
//!
//! ```
//! use xtrapulp::{PartitionParams, Partitioner, XtraPulpPartitioner};
//! use xtrapulp_gen::{GraphConfig, GraphKind};
//!
//! let graph = GraphConfig::new(GraphKind::Rmat { scale: 10, edge_factor: 8 }, 42)
//!     .generate()
//!     .to_csr();
//! let params = PartitionParams::with_parts(8);
//! let (parts, quality) = XtraPulpPartitioner::new(2)
//!     .try_partition_with_quality(&graph, &params)
//!     .expect("valid parameters");
//! assert_eq!(parts.len(), graph.num_vertices());
//! assert!(quality.vertex_imbalance < 1.2);
//!
//! // Malformed requests are typed errors, not panics.
//! let bad = PartitionParams { num_parts: 0, ..Default::default() };
//! assert!(XtraPulpPartitioner::new(2).try_partition(&graph, &bad).is_err());
//! ```

pub mod balance;
pub mod baselines;
pub mod edge_balance;
pub mod error;
pub mod exchange;
pub mod init;
pub mod metrics;
pub mod params;
pub mod partitioner;
pub mod pulp;
pub mod sweep;

pub use error::PartitionError;
pub use params::{InitStrategy, PartitionParams};
pub use partitioner::{
    greedy_seed_unassigned, try_xtrapulp_partition, try_xtrapulp_partition_from,
    try_xtrapulp_partition_from_touched, validate_warm_start, xtrapulp_partition,
    EdgeBlockPartitioner, PartitionResult, Partitioner, RandomPartitioner, VertexBlockPartitioner,
    WarmStartPartitioner, XtraPulpPartitioner,
};
pub use pulp::{
    pulp_partition, try_pulp_partition, try_pulp_partition_from,
    try_pulp_partition_from_with_stats, try_pulp_partition_from_with_stats_timed,
    try_pulp_partition_from_with_sweeps, try_pulp_partition_with_stats,
    try_pulp_partition_with_stats_timed, try_pulp_partition_with_sweeps, PulpPartitioner,
};
pub use sweep::{StageBreakdown, StageKind, SweepMode, SweepStats, SweepWorkspace};

// Re-exported so downstream crates (analytics, spmv, bench) can name graph types without
// an extra dependency edge.
pub use xtrapulp_graph::{Csr, DistGraph, Distribution};
