//! The shared frontier-driven, thread-parallel label-propagation sweep engine.
//!
//! Every stage of every label-propagation partitioner in this workspace — the four
//! serial PuLP stages, the distributed XtraPuLP stages and the multilevel boundary
//! refinement — has the same inner shape: sweep over a set of vertices, score each
//! vertex's neighbouring parts, maybe move it, and update per-part counters. The seed
//! implementation walked *all* `0..n` vertices every sweep and re-zeroed a `p`-length
//! score array per vertex, even in fully converged regions. This module factors that
//! inner loop into one engine with two orthogonal optimisations:
//!
//! * **Active-vertex frontier** ([`Frontier`]): a vertex is (re)scored in the next sweep
//!   only when it or one of its neighbours changed part in the current one. Converged
//!   regions cost nothing, which turns sweep cost from `O(n · sweeps)` into `O(active
//!   work)` — the property the paper's minutes-for-trillion-edges claim rests on, and
//!   what lets warm starts touch only the delta neighbourhood.
//! * **Deterministic intra-rank thread parallelism**: each sweep processes the active
//!   set in fixed-size chunks ([`SWEEP_CHUNK`]); within a chunk, move *proposals* are
//!   computed in parallel against the chunk-start state, then *applied* sequentially in
//!   vertex order with the stage's admissibility recheck. Chunk boundaries depend only
//!   on the active set (never on the thread count), proposals are pure per-vertex
//!   functions of the chunk-start state, and application order is fixed — so the result
//!   is bit-identical for 1, 2 or any number of threads.
//!
//! The two-phase chunk application is also what makes the semantics well defined: the
//! propose phase sees a consistent snapshot, and the apply phase rechecks each proposal
//! against the counters as earlier moves in the same chunk land (dropping proposals the
//! chunk invalidated), so no chunk can overshoot a balance constraint.

use std::num::NonZeroUsize;

use serde::{Deserialize, Serialize};

/// Returned by [`SweepStage::propose`] when the vertex should stay where it is.
pub const NO_MOVE: i32 = -1;

/// Number of vertices per two-phase chunk for *refinement* sweeps. Fixed (never derived
/// from the thread count) so that results are independent of parallelism; refinement
/// decisions are neighbour-local and stale-tolerant, so chunks can be large enough to
/// amortise the parallel fork.
pub const SWEEP_CHUNK: usize = 2048;

/// Number of vertices per two-phase chunk for *balance* sweeps: one, i.e. fused
/// propose/apply per vertex. Balance attraction weights are reciprocal in the live
/// part sizes and drift with every move; any batching of proposals measurably degrades
/// the edge-balance the stage can reach on skewed graphs at scale (hub placement is
/// decided by the weight feedback loop), so balance sweeps stay sequential and the
/// parallel fan-out lives in the refinement sweeps, where decisions are neighbour-local
/// and stale-tolerant.
pub const BALANCE_CHUNK: usize = 1;

/// Which sweep strategy a run uses. Carried in
/// [`PartitionParams`](crate::params::PartitionParams) so benches and parity tests can
/// pit the two against each other on identical inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepMode {
    /// Frontier-driven sweeps: only active vertices are rescored, refinement stops on an
    /// empty frontier, and provably no-op balance sweeps are skipped. The default.
    Frontier,
    /// Full sweeps over `0..n` every iteration — the seed implementation's behaviour,
    /// kept as the measured baseline for `bench_sweep` and the parity tests.
    Full,
}

/// How a frontier-mode refinement pass terminates.
///
/// `Polish`: when the frontier empties, one *full* sweep verifies the fixed point —
/// part sizes change as vertices move, so a vertex whose neighbourhood never changed
/// can still become movable when its preferred part gains headroom, which the frontier
/// alone cannot see. The pass ends only when a full sweep applies no moves: exactly the
/// legacy full-sweep stopping criterion, so cold quality matches the baseline while
/// intermediate progress runs on cheap frontier sweeps.
///
/// `FrontierOnly`: the pass ends as soon as the frontier empties. Used by warm
/// refine-only runs, whose seed is the previous epoch's already-polished partition —
/// work stays scoped to the delta neighbourhood, which is the `O(active)` property warm
/// starts are built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineConvergence {
    /// Verify convergence with full sweeps; stop at a full-sweep fixed point.
    Polish,
    /// Stop on an empty frontier.
    FrontierOnly,
}

/// The refinement pass budget in sweeps: frontier mode stretches the legacy
/// `refine_iters` by half — the extra sweeps are near-free where the frontier has
/// collapsed, and on heavy-churn graphs they buy back the coverage the active-set
/// restriction costs (measured cut parity with the legacy schedule at a fraction of its
/// scored vertices).
pub fn refine_budget(refine_iters: usize, mode: SweepMode) -> u64 {
    match mode {
        SweepMode::Frontier => refine_iters as u64 + refine_iters as u64 / 2,
        SweepMode::Full => refine_iters as u64,
    }
}

/// Resolve the worker-thread count for the sweep engine: an explicit non-zero request
/// wins, then the `XTRAPULP_THREADS` environment variable, then the machine's available
/// parallelism.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = std::env::var("XTRAPULP_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Dense per-part score accumulator with sparse clearing: only the entries touched by
/// the current vertex are reset, so scoring costs `O(degree)` instead of `O(p)`.
#[derive(Debug, Default)]
pub struct ScoreScratch {
    scores: Vec<f64>,
    touched: Vec<usize>,
}

impl ScoreScratch {
    /// A scratch for `num_parts` parts.
    pub fn new(num_parts: usize) -> Self {
        ScoreScratch {
            scores: vec![0.0; num_parts],
            touched: Vec::with_capacity(64),
        }
    }

    /// Resize for `num_parts` parts, clearing all state.
    pub fn ensure(&mut self, num_parts: usize) {
        self.scores.clear();
        self.scores.resize(num_parts, 0.0);
        self.touched.clear();
    }

    /// Reset the touched entries.
    #[inline]
    pub fn clear(&mut self) {
        for &t in &self.touched {
            self.scores[t] = 0.0;
        }
        self.touched.clear();
    }

    /// Accumulate `value` onto `part`'s score.
    #[inline]
    pub fn add(&mut self, part: usize, value: f64) {
        if self.scores[part] == 0.0 && !self.touched.contains(&part) {
            self.touched.push(part);
        }
        self.scores[part] += value;
    }

    /// Current score of `part`.
    #[inline]
    pub fn get(&self, part: usize) -> f64 {
        self.scores[part]
    }

    /// The parts touched since the last [`clear`](ScoreScratch::clear).
    #[inline]
    pub fn touched(&self) -> &[usize] {
        &self.touched
    }
}

/// The active-vertex set: a membership bitset plus a double-buffered queue. `mark`
/// enqueues for the *next* sweep; [`SweepEngine::sweep`] drains the queue (sorted, so
/// processing order is canonical) at the start of each sweep.
#[derive(Debug, Default)]
pub struct Frontier {
    in_next: Vec<bool>,
    next: Vec<u32>,
    /// Spare buffer reused as the per-sweep active list.
    spare: Vec<u32>,
}

impl Frontier {
    /// Resize for `n` vertices, clearing the queue.
    pub fn ensure(&mut self, n: usize) {
        self.in_next.clear();
        self.in_next.resize(n, false);
        self.next.clear();
        self.spare.clear();
    }

    /// Enqueue `v` for the next sweep. Ids at or beyond the owned range (ghost copies)
    /// are ignored.
    #[inline]
    pub fn mark(&mut self, v: u32) {
        if let Some(flag) = self.in_next.get_mut(v as usize) {
            if !*flag {
                *flag = true;
                self.next.push(v);
            }
        }
    }

    /// Enqueue every vertex in `0..n`.
    pub fn seed_all(&mut self, n: usize) {
        for v in 0..n as u32 {
            self.mark(v);
        }
    }

    /// Number of vertices queued for the next sweep.
    pub fn active_len(&self) -> usize {
        self.next.len()
    }

    /// Drop everything queued for the next sweep.
    pub fn clear(&mut self) {
        for &v in &self.next {
            self.in_next[v as usize] = false;
        }
        self.next.clear();
    }

    /// Take the queued vertices as this sweep's sorted active list, leaving the queue
    /// empty for re-marking during the sweep.
    fn begin_sweep(&mut self) -> Vec<u32> {
        let mut current = std::mem::take(&mut self.next);
        self.next = std::mem::take(&mut self.spare);
        current.sort_unstable();
        for &v in &current {
            self.in_next[v as usize] = false;
        }
        current
    }

    /// Return the drained active-list buffer for reuse.
    fn end_sweep(&mut self, mut current: Vec<u32>) {
        current.clear();
        self.spare = current;
    }
}

/// What a sweep is *for*, so the run statistics can attribute work to the schedule
/// stage that caused it. Stages tag the engine via [`SweepEngine::set_stage`] before
/// sweeping; the engine books every sweep under the current tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum StageKind {
    /// Cut-reducing refinement sweeps (vertex or edge stage) — the frontier-driven
    /// workhorse, and the default tag.
    Refine,
    /// Constraint-driven balance sweeps: the vertex/edge balance schedule run while a
    /// balance constraint is actually violated.
    Balance,
    /// Perturbation sweeps: a balance pass run while its constraint already holds (or
    /// is detected as unreachable), whose label churn only exists to let the next
    /// refinement round escape a local optimum.
    Churn,
}

impl StageKind {
    /// Trace span name for sweeps under this stage, matching the
    /// [`stage_timings`](SweepEngine::stage_timings) phase names.
    pub const fn span_name(self) -> &'static str {
        match self {
            StageKind::Refine => "sweep_refine",
            StageKind::Balance => "sweep_balance",
            StageKind::Churn => "sweep_churn",
        }
    }
}

/// Per-stage sweep/scored accounting: the [`SweepStats`] totals split by
/// [`StageKind`], so a report can attribute label-propagation work to refinement,
/// balance or perturbation churn. All counts, fully deterministic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct StageBreakdown {
    /// Refinement sweeps executed.
    pub refine_sweeps: u64,
    /// Vertices scored by refinement sweeps.
    pub refine_scored: u64,
    /// Balance sweeps executed while a constraint was violated.
    pub balance_sweeps: u64,
    /// Vertices scored by balance sweeps.
    pub balance_scored: u64,
    /// Perturbation (churn) sweeps executed at refinement fixed points.
    pub churn_sweeps: u64,
    /// Vertices scored by churn sweeps.
    pub churn_scored: u64,
}

impl StageBreakdown {
    fn record(&mut self, kind: StageKind, scored: u64) {
        let (sweeps, vertices) = match kind {
            StageKind::Refine => (&mut self.refine_sweeps, &mut self.refine_scored),
            StageKind::Balance => (&mut self.balance_sweeps, &mut self.balance_scored),
            StageKind::Churn => (&mut self.churn_sweeps, &mut self.churn_scored),
        };
        *sweeps += 1;
        *vertices += scored;
    }

    /// Sweep count booked under `kind`.
    pub fn sweeps(&self, kind: StageKind) -> u64 {
        match kind {
            StageKind::Refine => self.refine_sweeps,
            StageKind::Balance => self.balance_sweeps,
            StageKind::Churn => self.churn_sweeps,
        }
    }

    /// Scored-vertex count booked under `kind`.
    pub fn scored(&self, kind: StageKind) -> u64 {
        match kind {
            StageKind::Refine => self.refine_scored,
            StageKind::Balance => self.balance_scored,
            StageKind::Churn => self.churn_scored,
        }
    }
}

/// Counters a sweep run keeps so speedups can be measured rather than asserted:
/// sweeps executed, vertices scored (the unit of real work — the frontier's whole point
/// is to shrink this) and moves applied, plus the same work split per schedule stage.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SweepStats {
    /// Label-propagation sweeps executed (a sweep over an empty frontier is skipped and
    /// not counted).
    pub sweeps: u64,
    /// Vertices scored across all sweeps — `n * sweeps` for full sweeps, the sum of
    /// active-set sizes for frontier sweeps.
    pub vertices_scored: u64,
    /// Part reassignments applied.
    pub moves: u64,
    /// The sweep/scored totals attributed per stage (refine / balance / churn).
    pub stages: StageBreakdown,
}

/// One label-propagation stage, split into the two phases of the deterministic chunk
/// protocol.
///
/// `propose` is called in parallel (the stage must be `Sync`) against an immutable
/// snapshot of `parts` and the stage's counters; it returns the target part or
/// [`NO_MOVE`]. `apply` is called sequentially, in ascending vertex order within each
/// chunk, *after* earlier proposals in the chunk have landed; it must re-validate the
/// move against the current counters (and the live `parts`, which reflects earlier
/// applications) and commit its counter updates, returning whether the move stands.
/// The engine itself writes `parts[v]` and maintains the frontier.
pub trait SweepStage: Sync {
    /// Score `v`'s neighbourhood and pick a destination part, or [`NO_MOVE`].
    fn propose(&self, v: u32, parts: &[i32], scratch: &mut ScoreScratch) -> i32;

    /// Recheck and commit the proposed move of `v` to `target`; `true` if it stands.
    fn apply(&mut self, v: u32, target: usize, parts: &[i32]) -> bool;
}

/// The sweep driver state: frontier, per-thread score scratches, the chunk proposal
/// buffer and the run statistics.
#[derive(Debug)]
pub struct SweepEngine {
    /// The active-vertex set carried across sweeps and stages.
    pub frontier: Frontier,
    scratches: Vec<ScoreScratch>,
    proposals: Vec<i32>,
    /// Cached identity vector for full sweeps, grown on demand, so a full sweep does
    /// not allocate and fill a fresh `4n`-byte index array every time.
    full_range: Vec<u32>,
    threads: usize,
    /// The schedule stage subsequent sweeps are booked under (see
    /// [`SweepEngine::set_stage`]).
    stage: StageKind,
    /// Wall-clock nanoseconds spent inside [`SweepEngine::sweep`] per stage
    /// (indexed Refine/Balance/Churn). Timing only — never feeds back into any
    /// decision, so determinism is untouched.
    stage_nanos: [u64; 3],
    /// Cumulative counters for the current run.
    pub stats: SweepStats,
}

impl SweepEngine {
    /// An engine running `threads` workers (`0` = auto, see [`resolve_threads`]).
    pub fn new(threads: usize) -> Self {
        let threads = resolve_threads(threads).max(1);
        SweepEngine {
            frontier: Frontier::default(),
            scratches: (0..threads).map(|_| ScoreScratch::default()).collect(),
            proposals: vec![NO_MOVE; SWEEP_CHUNK],
            full_range: Vec::new(),
            threads,
            stage: StageKind::Refine,
            stage_nanos: [0; 3],
            stats: SweepStats::default(),
        }
    }

    /// The worker-thread count this engine fans proposals out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Book subsequent sweeps under `kind` in the per-stage statistics. Stages call
    /// this once at pass entry; the tag persists until the next call.
    pub fn set_stage(&mut self, kind: StageKind) {
        self.stage = kind;
    }

    /// Wall-clock seconds spent sweeping under `kind` since the last
    /// [`begin_run`](SweepEngine::begin_run).
    pub fn stage_seconds(&self, kind: StageKind) -> f64 {
        self.stage_nanos[kind as usize] as f64 * 1e-9
    }

    /// The per-stage sweep wall-clock as a [`PhaseTimer`] with
    /// `sweep_refine`/`sweep_balance`/`sweep_churn` phases (zero-duration stages
    /// omitted). Both the serial and distributed drivers merge this into their
    /// reports' timings — the phase names are defined once, here.
    pub fn stage_timings(&self) -> xtrapulp_comm::PhaseTimer {
        let mut timings = xtrapulp_comm::PhaseTimer::new();
        for (phase, kind) in [
            ("sweep_refine", StageKind::Refine),
            ("sweep_balance", StageKind::Balance),
            ("sweep_churn", StageKind::Churn),
        ] {
            let seconds = self.stage_seconds(kind);
            if seconds > 0.0 {
                timings.add(phase, std::time::Duration::from_secs_f64(seconds));
            }
        }
        timings
    }

    /// Borrow a score scratch for sequential (non-sweep) scoring loops, so callers do
    /// not allocate their own per-part gain vectors per invocation.
    pub fn scratch(&mut self) -> &mut ScoreScratch {
        &mut self.scratches[0]
    }

    /// Prepare for a run over `n` vertices and `num_parts` parts: sizes the frontier,
    /// the scratches and the chunk buffer, and zeroes the statistics.
    pub fn begin_run(&mut self, n: usize, num_parts: usize) {
        self.frontier.ensure(n);
        for scratch in &mut self.scratches {
            scratch.ensure(num_parts);
        }
        self.stage = StageKind::Refine;
        self.stage_nanos = [0; 3];
        self.stats = SweepStats::default();
    }

    /// Run one sweep of `stage` over the active set.
    ///
    /// With `use_frontier`, the active set is the queued frontier (drained, sorted);
    /// otherwise it is all of `0..owned_limit`. Either way every applied move marks the
    /// moved vertex into the next frontier, and `enqueue_neighbors(v, &mut mark)` is
    /// asked to feed `v`'s (owned) neighbours in as well — so full sweeps still populate
    /// the frontier for any frontier-driven stage that follows. `on_move` observes each
    /// applied move (the distributed stages collect their exchange updates there).
    ///
    /// Returns the number of moves applied.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep<S: SweepStage>(
        &mut self,
        owned_limit: usize,
        parts: &mut [i32],
        use_frontier: bool,
        chunk_size: usize,
        stage: &mut S,
        enqueue_neighbors: impl Fn(u32, &mut dyn FnMut(u32)),
        mut on_move: impl FnMut(u32, i32),
    ) -> u64 {
        let current: Vec<u32>;
        let full_range: Vec<u32>;
        let active: &[u32];
        if use_frontier {
            current = self.frontier.begin_sweep();
            active = &current;
            full_range = Vec::new();
        } else {
            // A full sweep ignores the queue but keeps its contents queued: the marks
            // collected so far still describe "changed since the last frontier sweep".
            // The identity vector is cached across sweeps (taken out here so the
            // engine stays mutably borrowable below).
            let mut cached = std::mem::take(&mut self.full_range);
            while cached.len() < owned_limit {
                cached.push(cached.len() as u32);
            }
            cached.truncate(owned_limit);
            full_range = cached;
            current = Vec::new();
            active = &full_range;
        }
        if active.is_empty() {
            if use_frontier {
                self.frontier.end_sweep(current);
            } else {
                self.full_range = full_range;
            }
            return 0;
        }

        // Span arg: vertices scored this sweep (the active-set size).
        let _sweep_span = xtrapulp_obs::span_with(self.stage.span_name(), active.len() as u64);
        // lint: nondeterministic-ok — wall-clock feeds SweepStats timing
        // telemetry only; no partition decision reads it.
        let sweep_started = std::time::Instant::now();
        self.stats.sweeps += 1;
        self.stats.vertices_scored += active.len() as u64;
        self.stats.stages.record(self.stage, active.len() as u64);
        if self.proposals.len() < chunk_size {
            self.proposals.resize(chunk_size, NO_MOVE);
        }
        let mut moves = 0u64;
        for chunk in active.chunks(chunk_size.max(1)) {
            // Phase 1: propose in parallel against the chunk-start snapshot.
            self.propose_chunk(chunk, parts, stage);
            // Phase 2: apply sequentially, in order, with the stage's recheck. A
            // rejected proposal (its chunk-start target has since filled up or lost
            // its appeal) is *repaired* by re-proposing against the live state — the
            // sequential adaptivity the legacy per-vertex loop had, paid only for the
            // vertices the chunk invalidated. Still deterministic: the apply phase is
            // single-threaded and ordered.
            for (slot, &v) in chunk.iter().enumerate() {
                let mut target = self.proposals[slot];
                if target < 0 {
                    continue;
                }
                if parts[v as usize] == target || !stage.apply(v, target as usize, parts) {
                    target = stage.propose(v, parts, &mut self.scratches[0]);
                    if target < 0
                        || parts[v as usize] == target
                        || !stage.apply(v, target as usize, parts)
                    {
                        continue;
                    }
                }
                parts[v as usize] = target;
                moves += 1;
                let frontier = &mut self.frontier;
                frontier.mark(v);
                enqueue_neighbors(v, &mut |u| frontier.mark(u));
                on_move(v, target);
            }
        }
        self.stats.moves += moves;
        self.stage_nanos[self.stage as usize] += sweep_started.elapsed().as_nanos() as u64;
        if use_frontier {
            self.frontier.end_sweep(current);
        } else {
            self.full_range = full_range;
        }
        moves
    }

    /// Fill `self.proposals[..chunk.len()]` with `stage.propose` outputs, fanning out
    /// across the engine's worker threads when the chunk is big enough to pay for it.
    fn propose_chunk<S: SweepStage>(&mut self, chunk: &[u32], parts: &[i32], stage: &S) {
        let proposals = &mut self.proposals[..chunk.len()];
        // Below this size the scoped-thread fork costs more than it buys; the cutoff is
        // a constant, so it cannot make results depend on the thread count (proposals
        // are pure per-vertex functions either way).
        const PAR_MIN: usize = 256;
        let nthreads = self.threads.min(chunk.len().div_ceil(PAR_MIN)).max(1);
        if nthreads == 1 {
            let scratch = &mut self.scratches[0];
            for (slot, &v) in chunk.iter().enumerate() {
                proposals[slot] = stage.propose(v, parts, scratch);
            }
            return;
        }
        let sub = chunk.len().div_ceil(nthreads);
        std::thread::scope(|scope| {
            for ((prop_sub, chunk_sub), scratch) in proposals
                .chunks_mut(sub)
                .zip(chunk.chunks(sub))
                .zip(self.scratches.iter_mut())
            {
                scope.spawn(move || {
                    for (slot, &v) in chunk_sub.iter().enumerate() {
                        prop_sub[slot] = stage.propose(v, parts, scratch);
                    }
                });
            }
        });
    }
}

/// Reusable per-part counter buffers shared by the sweep stages, so no stage allocates
/// `p`-length vectors per invocation.
#[derive(Debug, Default)]
pub struct PartCounters {
    /// Part sizes in vertices.
    pub size_v: Vec<i64>,
    /// Part sizes in arcs (degree sums).
    pub size_e: Vec<i64>,
    /// Per-part cut arc counts.
    pub size_c: Vec<i64>,
    /// This-iteration vertex-count changes (distributed stages).
    pub change_v: Vec<i64>,
    /// This-iteration arc-count changes (distributed stages).
    pub change_e: Vec<i64>,
    /// This-iteration cut-count changes (distributed stages).
    pub change_c: Vec<i64>,
    /// Per-part weight buffer (balance stages).
    pub weight_a: Vec<f64>,
    /// Second per-part weight buffer (edge-balance stages).
    pub weight_b: Vec<f64>,
}

impl PartCounters {
    /// Resize every buffer to `num_parts` entries, zeroed.
    pub fn ensure(&mut self, num_parts: usize) {
        for buf in [
            &mut self.size_v,
            &mut self.size_e,
            &mut self.size_c,
            &mut self.change_v,
            &mut self.change_e,
            &mut self.change_c,
        ] {
            buf.clear();
            buf.resize(num_parts, 0);
        }
        for buf in [&mut self.weight_a, &mut self.weight_b] {
            buf.clear();
            buf.resize(num_parts, 0.0);
        }
    }

    /// Zero the three change buffers (start of a distributed iteration).
    pub fn reset_changes(&mut self) {
        for buf in [&mut self.change_v, &mut self.change_e, &mut self.change_c] {
            for x in buf.iter_mut() {
                *x = 0;
            }
        }
    }
}

/// The reusable workspace for a whole partitioning run: the sweep engine plus the
/// per-part counter buffers the stages borrow. One workspace serves every stage of a
/// run back to back; a serving layer can keep it alive across jobs.
#[derive(Debug)]
pub struct SweepWorkspace {
    /// The frontier-driven sweep driver.
    pub engine: SweepEngine,
    /// The shared per-part counters.
    pub counters: PartCounters,
    /// Maximum per-part arc load at the previous edge-balance pass entry, for stall
    /// detection (identical on every rank: derived from allreduced sizes).
    pub edge_balance_last_max: Option<f64>,
    /// Set when an edge-balance pass failed to improve the maximum arc load while the
    /// constraint was unmet: the target is unreachable on this graph (hub-dominated
    /// skew), and further balance churn would cost full sweeps for nothing. Frontier
    /// mode skips the stage's remaining passes then.
    pub edge_balance_stalled: bool,
}

impl SweepWorkspace {
    /// A workspace running `threads` proposal workers (`0` = auto).
    pub fn new(threads: usize) -> Self {
        SweepWorkspace {
            engine: SweepEngine::new(threads),
            counters: PartCounters::default(),
            edge_balance_last_max: None,
            edge_balance_stalled: false,
        }
    }

    /// Prepare for a run over `n` vertices and `num_parts` parts.
    pub fn begin_run(&mut self, n: usize, num_parts: usize) {
        self.engine.begin_run(n, num_parts);
        self.counters.ensure(num_parts);
        self.edge_balance_last_max = None;
        self.edge_balance_stalled = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy stage: move any vertex with a positive label-majority towards part 0 if
    /// part 0 has headroom. Exercises the two-phase recheck and the frontier plumbing
    /// without partitioning semantics.
    struct ToyStage {
        capacity: i64,
        size0: i64,
    }

    impl SweepStage for ToyStage {
        fn propose(&self, v: u32, parts: &[i32], _scratch: &mut ScoreScratch) -> i32 {
            if parts[v as usize] != 0 && self.size0 < self.capacity {
                0
            } else {
                NO_MOVE
            }
        }

        fn apply(&mut self, _v: u32, target: usize, _parts: &[i32]) -> bool {
            if target == 0 && self.size0 < self.capacity {
                self.size0 += 1;
                true
            } else {
                false
            }
        }
    }

    fn line_neighbors(n: usize) -> impl Fn(u32, &mut dyn FnMut(u32)) {
        move |v, mark| {
            if v > 0 {
                mark(v - 1);
            }
            if (v as usize) + 1 < n {
                mark(v + 1);
            }
        }
    }

    #[test]
    fn apply_recheck_caps_moves_within_a_chunk() {
        // 10 vertices all in part 1, capacity 3 in part 0: the propose phase nominates
        // everyone, the apply recheck admits exactly the first three in vertex order.
        let n = 10;
        let mut engine = SweepEngine::new(1);
        engine.begin_run(n, 2);
        engine.frontier.seed_all(n);
        let mut parts = vec![1i32; n];
        let mut stage = ToyStage {
            capacity: 3,
            size0: 0,
        };
        let moves = engine.sweep(
            n,
            &mut parts,
            true,
            SWEEP_CHUNK,
            &mut stage,
            line_neighbors(n),
            |_, _| {},
        );
        assert_eq!(moves, 3);
        assert_eq!(&parts[..4], &[0, 0, 0, 1]);
        assert_eq!(engine.stats.vertices_scored, n as u64);
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let n = 10_000;
        let run = |threads: usize| {
            let mut engine = SweepEngine::new(threads);
            engine.begin_run(n, 2);
            engine.frontier.seed_all(n);
            let mut parts = vec![1i32; n];
            let mut stage = ToyStage {
                capacity: 2_500,
                size0: 0,
            };
            while engine.sweep(
                n,
                &mut parts,
                true,
                SWEEP_CHUNK,
                &mut stage,
                line_neighbors(n),
                |_, _| {},
            ) > 0
            {}
            parts
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(7));
    }

    #[test]
    fn frontier_marks_moved_vertices_and_neighbors_once() {
        let mut f = Frontier::default();
        f.ensure(5);
        f.mark(2);
        f.mark(2);
        f.mark(4);
        f.mark(9); // out of range: ignored (ghost copies)
        assert_eq!(f.active_len(), 2);
        let active = f.begin_sweep();
        assert_eq!(active, vec![2, 4]);
        f.end_sweep(active);
        assert_eq!(f.active_len(), 0);
    }

    #[test]
    fn full_sweeps_keep_the_queue_for_later_frontier_sweeps() {
        let n = 6;
        let mut engine = SweepEngine::new(1);
        engine.begin_run(n, 2);
        let mut parts = vec![1i32; n];
        let mut stage = ToyStage {
            capacity: 1,
            size0: 0,
        };
        // Full sweep: processes everyone, moves one vertex, queues it + neighbours.
        let moves = engine.sweep(
            n,
            &mut parts,
            false,
            SWEEP_CHUNK,
            &mut stage,
            line_neighbors(n),
            |_, _| {},
        );
        assert_eq!(moves, 1);
        assert!(engine.frontier.active_len() >= 2);
        // The follow-up frontier sweep only scores the queued region.
        let scored_before = engine.stats.vertices_scored;
        engine.sweep(
            n,
            &mut parts,
            true,
            SWEEP_CHUNK,
            &mut stage,
            line_neighbors(n),
            |_, _| {},
        );
        assert!(engine.stats.vertices_scored - scored_before < n as u64);
    }

    #[test]
    fn empty_frontier_sweep_is_free() {
        let mut engine = SweepEngine::new(1);
        engine.begin_run(8, 2);
        let mut parts = vec![0i32; 8];
        let mut stage = ToyStage {
            capacity: 0,
            size0: 0,
        };
        let moves = engine.sweep(
            8,
            &mut parts,
            true,
            SWEEP_CHUNK,
            &mut stage,
            line_neighbors(8),
            |_, _| {},
        );
        assert_eq!(moves, 0);
        assert_eq!(engine.stats.sweeps, 0);
        assert_eq!(engine.stats.vertices_scored, 0);
    }

    #[test]
    fn stage_breakdown_attributes_sweeps_to_the_current_tag() {
        let n = 16;
        let mut engine = SweepEngine::new(1);
        engine.begin_run(n, 2);
        engine.frontier.seed_all(n);
        let mut parts = vec![1i32; n];
        let mut stage = ToyStage {
            capacity: n as i64,
            size0: 0,
        };
        // Default tag is Refine.
        engine.sweep(
            n,
            &mut parts,
            true,
            SWEEP_CHUNK,
            &mut stage,
            line_neighbors(n),
            |_, _| {},
        );
        assert_eq!(engine.stats.stages.refine_sweeps, 1);
        assert_eq!(engine.stats.stages.refine_scored, n as u64);
        assert_eq!(engine.stats.stages.balance_sweeps, 0);
        // Re-tag and sweep again (full sweep so the empty frontier doesn't skip it).
        engine.set_stage(StageKind::Churn);
        engine.sweep(
            n,
            &mut parts,
            false,
            SWEEP_CHUNK,
            &mut stage,
            line_neighbors(n),
            |_, _| {},
        );
        assert_eq!(engine.stats.stages.churn_sweeps, 1);
        assert_eq!(engine.stats.stages.churn_scored, n as u64);
        // Totals and the breakdown agree.
        let stages = engine.stats.stages;
        assert_eq!(
            stages.refine_sweeps + stages.balance_sweeps + stages.churn_sweeps,
            engine.stats.sweeps
        );
        assert_eq!(
            stages.refine_scored + stages.balance_scored + stages.churn_scored,
            engine.stats.vertices_scored
        );
        assert!(engine.stage_seconds(StageKind::Refine) >= 0.0);
        // begin_run resets the breakdown and the tag.
        engine.begin_run(n, 2);
        assert_eq!(engine.stats.stages, StageBreakdown::default());
    }

    #[test]
    fn score_scratch_clears_sparsely() {
        let mut s = ScoreScratch::new(4);
        s.add(1, 2.0);
        s.add(3, 1.0);
        s.add(1, 0.5);
        assert_eq!(s.get(1), 2.5);
        assert_eq!(s.touched(), &[1, 3]);
        s.clear();
        assert_eq!(s.get(1), 0.0);
        assert!(s.touched().is_empty());
    }
}
