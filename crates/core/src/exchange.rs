//! The boundary update exchange (`ExchangeUpdates`, Algorithm 3 of the paper).
//!
//! After a rank reassigns some of its owned vertices, every rank that keeps a ghost copy
//! of those vertices must learn the new part labels before the next iteration. A rank
//! `t` holds a ghost of vertex `v` exactly when `t` owns at least one neighbour of `v`,
//! so the sender walks `v`'s adjacency, collects the set of neighbouring ranks (with a
//! `to_send` dedup bitmap, as in the paper), and ships `(global_id, new_part)` pairs with
//! one `Alltoallv`.

use xtrapulp_comm::RankCtx;
use xtrapulp_graph::{DistGraph, LocalId};

use crate::sweep::Frontier;

/// One part reassignment of an owned vertex.
pub type PartUpdate = (LocalId, i32);

/// The transpose of the owned→ghost adjacency: for every ghost vertex, the owned
/// vertices adjacent to it. The frontier-driven sweeps need it because an incoming
/// ghost part change must re-activate the owned neighbourhood of that ghost, and the
/// local CSR only stores adjacency for owned vertices. Built once per partitioning run
/// in `O(local arcs)`.
#[derive(Debug, Default)]
pub struct GhostNeighborMap {
    offsets: Vec<u32>,
    owned: Vec<LocalId>,
}

impl GhostNeighborMap {
    /// Build the map for this rank's graph.
    pub fn build(graph: &DistGraph) -> GhostNeighborMap {
        let n_owned = graph.n_owned();
        let n_ghost = graph.n_ghost();
        let mut counts = vec![0u32; n_ghost + 1];
        for v in 0..n_owned {
            for &u in graph.neighbors(v as LocalId) {
                if u as usize >= n_owned {
                    counts[u as usize - n_owned + 1] += 1;
                }
            }
        }
        for i in 0..n_ghost {
            counts[i + 1] += counts[i];
        }
        let mut owned = vec![0 as LocalId; counts[n_ghost] as usize];
        let mut cursor = counts.clone();
        for v in 0..n_owned {
            for &u in graph.neighbors(v as LocalId) {
                if u as usize >= n_owned {
                    let slot = u as usize - n_owned;
                    owned[cursor[slot] as usize] = v as LocalId;
                    cursor[slot] += 1;
                }
            }
        }
        GhostNeighborMap {
            offsets: counts,
            owned,
        }
    }

    /// The owned vertices adjacent to ghost slot `slot` (i.e. local id
    /// `n_owned + slot`).
    pub fn owned_neighbors(&self, slot: usize) -> &[LocalId] {
        let start = self.offsets[slot] as usize;
        let end = self.offsets[slot + 1] as usize;
        &self.owned[start..end]
    }
}

/// Push the part labels of locally reassigned vertices to the ranks holding them as
/// ghosts, and apply the symmetric incoming updates to this rank's ghost entries in
/// `parts`.
///
/// Returns the number of ghost labels updated locally. Must be called collectively.
pub fn push_part_updates(
    ctx: &RankCtx,
    graph: &DistGraph,
    updates: &[PartUpdate],
    parts: &mut [i32],
) -> u64 {
    push_part_updates_impl(ctx, graph, updates, parts, None)
}

/// [`push_part_updates`] variant that also feeds the frontier: every owned neighbour of
/// a ghost whose part label just changed is marked active for the next sweep — the
/// distributed half of "a vertex is enqueued when it or a neighbour changed part".
/// Must be called collectively.
pub fn push_part_updates_marking(
    ctx: &RankCtx,
    graph: &DistGraph,
    updates: &[PartUpdate],
    parts: &mut [i32],
    ghosts: &GhostNeighborMap,
    frontier: &mut Frontier,
) -> u64 {
    push_part_updates_impl(ctx, graph, updates, parts, Some((ghosts, frontier)))
}

fn push_part_updates_impl(
    ctx: &RankCtx,
    graph: &DistGraph,
    updates: &[PartUpdate],
    parts: &mut [i32],
    mut marking: Option<(&GhostNeighborMap, &mut Frontier)>,
) -> u64 {
    let nranks = ctx.nranks();
    let rank = ctx.rank();
    // Build per-destination buffers of (global id, new part) pairs. `to_send` deduplicates
    // destinations per updated vertex, exactly like the boolean array in Algorithm 3.
    let mut sends: Vec<Vec<(u64, i32)>> = vec![Vec::new(); nranks];
    let mut to_send = vec![false; nranks];
    for &(v, new_part) in updates {
        debug_assert!(graph.is_owned(v), "only owned vertices can be reassigned");
        for flag in to_send.iter_mut() {
            *flag = false;
        }
        for &u in graph.neighbors(v) {
            let owner = graph.owner_of_local(u);
            if owner != rank && !to_send[owner] {
                to_send[owner] = true;
                sends[owner].push((graph.global_id(v), new_part));
            }
        }
    }

    let received = ctx.alltoallv(sends);
    let mut applied = 0u64;
    for buf in received {
        for (global, new_part) in buf {
            let lid = graph
                .local_id(global)
                .expect("received a part update for a vertex this rank does not know");
            debug_assert!(
                !graph.is_owned(lid),
                "part updates must only arrive for ghost vertices"
            );
            if let Some((ghosts, frontier)) = marking.as_mut() {
                if parts[lid as usize] != new_part {
                    for &v in ghosts.owned_neighbors(lid as usize - graph.n_owned()) {
                        frontier.mark(v);
                    }
                }
            }
            parts[lid as usize] = new_part;
            applied += 1;
        }
    }
    applied
}

/// Synchronise all ghost part labels by pulling them from their owners (used after
/// non-incremental initialisation, where every label may have changed).
pub fn refresh_ghost_parts(ctx: &RankCtx, graph: &DistGraph, parts: &mut [i32]) {
    let owned = parts[..graph.n_owned()].to_vec();
    let ghosts = graph.ghost_values_i32(ctx, &owned);
    parts[graph.n_owned()..graph.n_total()].copy_from_slice(&ghosts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp_comm::Runtime;
    use xtrapulp_graph::{Distribution, GlobalId};

    fn ring(n: u64) -> Vec<(GlobalId, GlobalId)> {
        (0..n).map(|i| (i, (i + 1) % n)).collect()
    }

    #[test]
    fn updates_reach_all_ghost_copies() {
        let edges = ring(12);
        Runtime::run(3, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 12, &edges);
            // Start with everything in part 0 everywhere.
            let mut parts = vec![0i32; g.n_total()];
            // Every rank moves its first owned vertex to part (rank + 1).
            let updates: Vec<PartUpdate> = if g.n_owned() > 0 {
                parts[0] = ctx.rank() as i32 + 1;
                vec![(0, ctx.rank() as i32 + 1)]
            } else {
                vec![]
            };
            push_part_updates(ctx, &g, &updates, &mut parts);
            // Every ghost label must now equal what its owner assigned: the owner's first
            // owned vertex got `owner_rank + 1`, all others stayed 0.
            for slot in 0..g.n_ghost() {
                let lid = (g.n_owned() + slot) as LocalId;
                let owner = g.owner_of_local(lid);
                let owner_first_global: GlobalId = g
                    .distribution()
                    .owned_vertices(owner, 12, ctx.nranks())
                    .next()
                    .unwrap();
                let expected = if g.global_id(lid) == owner_first_global {
                    owner as i32 + 1
                } else {
                    0
                };
                assert_eq!(parts[lid as usize], expected);
            }
        });
    }

    #[test]
    fn empty_update_lists_are_fine() {
        let edges = ring(8);
        Runtime::run(4, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Cyclic, 8, &edges);
            let mut parts = vec![3i32; g.n_total()];
            let applied = push_part_updates(ctx, &g, &[], &mut parts);
            assert_eq!(applied, 0);
            assert!(parts.iter().all(|&p| p == 3));
        });
    }

    #[test]
    fn refresh_ghost_parts_pulls_owner_labels() {
        let edges = ring(10);
        Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 10, &edges);
            let mut parts = vec![-1i32; g.n_total()];
            // Owners label their vertices with their global id.
            for (v, part) in parts.iter_mut().enumerate().take(g.n_owned()) {
                *part = g.global_id(v as LocalId) as i32;
            }
            refresh_ghost_parts(ctx, &g, &mut parts);
            for slot in 0..g.n_ghost() {
                let lid = (g.n_owned() + slot) as LocalId;
                assert_eq!(parts[lid as usize], g.global_id(lid) as i32);
            }
        });
    }

    #[test]
    fn single_rank_has_no_ghosts_to_update() {
        let edges = ring(6);
        Runtime::run(1, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 6, &edges);
            let mut parts = vec![0i32; g.n_total()];
            let updates: Vec<PartUpdate> = (0..g.n_owned() as LocalId).map(|v| (v, 1)).collect();
            for &(v, p) in &updates {
                parts[v as usize] = p;
            }
            let applied = push_part_updates(ctx, &g, &updates, &mut parts);
            assert_eq!(applied, 0);
        });
    }
}
