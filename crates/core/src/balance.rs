//! The vertex balancing and refinement phases (Algorithms 4 and 5 of the paper).
//!
//! **Balancing** runs weighted label propagation: the attractiveness of part `i` to a
//! vertex is the (degree-weighted) number of its neighbours in `i`, scaled by the weight
//! `Wv(i) = max(Imb_v / (Sv(i) + mult * Cv(i)) - 1, 0)` which is large for underweight
//! parts and zero for parts at or above the target size. **Refinement** is a constrained
//! label propagation / FM-style pass that greedily reduces the cut while never letting a
//! part grow past the current maximum.
//!
//! The distributed-memory subtlety is the dynamic multiplier `mult`: because every rank
//! reassigns vertices using part sizes that are only refreshed at the end of the
//! iteration, an underweight part would receive a flood of vertices from *every* rank at
//! once and overshoot wildly. Each rank therefore bounds its own contribution by charging
//! `mult × (its local change)` against the global size estimate, with `mult` ramping
//! linearly from `nprocs·Y` (each rank may claim ~1/Y of the remaining headroom early on)
//! to `nprocs·X` (each rank claims exactly its share at the end).
//!
//! Both phases run on the shared sweep engine in [`crate::sweep`]: refinement is
//! frontier-driven (a vertex is rescored only when it or a neighbour — including a
//! ghost, via [`push_part_updates_marking`] — changed part), the intra-rank proposal
//! phase is thread-parallel with deterministic two-phase chunk application, and
//! balancing follows the fixed-point perturbation policy (skip while refinement is
//! active, one churn sweep at a refinement fixed point, the full schedule while the
//! constraint is unmet).

use xtrapulp_comm::RankCtx;
use xtrapulp_graph::{DistGraph, LocalId};

use crate::exchange::{push_part_updates_marking, GhostNeighborMap, PartUpdate};
use crate::params::PartitionParams;
use crate::sweep::{
    refine_budget, RefineConvergence, ScoreScratch, StageKind, SweepMode, SweepStage,
    SweepWorkspace, BALANCE_CHUNK, NO_MOVE, SWEEP_CHUNK,
};

/// Mutable per-stage counters shared by the balancing phases: the running total iteration
/// counter that drives the multiplier schedule.
#[derive(Debug, Default, Clone, Copy)]
pub struct StageCounter {
    /// Number of balance/refine iterations performed so far in the current stage.
    pub iter_tot: usize,
}

/// Global part sizes in vertices, computed collectively.
pub fn global_vertex_counts(
    ctx: &RankCtx,
    graph: &DistGraph,
    parts: &[i32],
    num_parts: usize,
) -> Vec<i64> {
    let mut local = vec![0i64; num_parts];
    for v in 0..graph.n_owned() {
        local[parts[v] as usize] += 1;
    }
    ctx.allreduce_sum_i64(&local)
}

/// Global part sizes in arcs (vertex degree sums), computed collectively.
pub fn global_arc_counts(
    ctx: &RankCtx,
    graph: &DistGraph,
    parts: &[i32],
    num_parts: usize,
) -> Vec<i64> {
    let mut local = vec![0i64; num_parts];
    for v in 0..graph.n_owned() {
        local[parts[v] as usize] += graph.degree_owned(v as LocalId) as i64;
    }
    ctx.allreduce_sum_i64(&local)
}

/// Global per-part cut arc counts (arcs whose source lies in the part and whose endpoint
/// is in a different part), computed collectively.
pub fn global_cut_counts(
    ctx: &RankCtx,
    graph: &DistGraph,
    parts: &[i32],
    num_parts: usize,
) -> Vec<i64> {
    let mut local = vec![0i64; num_parts];
    for v in 0..graph.n_owned() {
        let pv = parts[v];
        for &u in graph.neighbors(v as LocalId) {
            if parts[u as usize] != pv {
                local[pv as usize] += 1;
            }
        }
    }
    ctx.allreduce_sum_i64(&local)
}

/// Enqueue-neighbours closure over a rank's local graph: only owned neighbours are
/// marked (ghost re-activation travels through [`push_part_updates_marking`] on the
/// owning side).
pub(crate) fn dist_neighbors(graph: &DistGraph) -> impl Fn(u32, &mut dyn FnMut(u32)) + '_ {
    let n_owned = graph.n_owned();
    move |v, mark| {
        for &u in graph.neighbors(v as LocalId) {
            if (u as usize) < n_owned {
                mark(u);
            }
        }
    }
}

/// Count `v`'s neighbours in part `x` and in `target` under the current labels.
#[inline]
fn recount_two(graph: &DistGraph, v: u32, parts: &[i32], x: usize, target: usize) -> (f64, f64) {
    let mut s_x = 0.0f64;
    let mut s_t = 0.0f64;
    for &u in graph.neighbors(v as LocalId) {
        let pu = parts[u as usize] as usize;
        if pu == x {
            s_x += 1.0;
        } else if pu == target {
            s_t += 1.0;
        }
    }
    (s_x, s_t)
}

/// One distributed vertex-balancing sweep: weighted label propagation towards
/// underweight parts, with the spill fallback for vertices label propagation cannot
/// reach.
struct DistVertexBalance<'a> {
    graph: &'a DistGraph,
    size_v: &'a [i64],
    change_v: &'a mut [i64],
    weights: &'a mut [f64],
    imb_v: f64,
    max_v: f64,
    mult: f64,
    spill_mult: f64,
}

impl DistVertexBalance<'_> {
    #[inline]
    fn weight_of(&self, i: usize) -> f64 {
        let denom = (self.size_v[i] as f64 + self.mult * self.change_v[i] as f64).max(1.0);
        (self.imb_v / denom - 1.0).max(0.0)
    }

    #[inline]
    fn estimate(&self, i: usize) -> f64 {
        self.size_v[i] as f64 + self.mult * self.change_v[i] as f64
    }

    #[inline]
    fn spill_estimate(&self, i: usize) -> f64 {
        self.size_v[i] as f64 + self.spill_mult * self.change_v[i] as f64
    }
}

impl SweepStage for DistVertexBalance<'_> {
    fn propose(&self, v: u32, parts: &[i32], scratch: &mut ScoreScratch) -> i32 {
        let x = parts[v as usize] as usize;
        scratch.clear();
        for &u in self.graph.neighbors(v as LocalId) {
            let pu = parts[u as usize] as usize;
            scratch.add(pu, self.graph.degree(u) as f64);
        }
        // Pick the best-scoring admissible part; ties keep the current part.
        let mut best_part = x;
        let mut best_score = 0.0f64;
        for &i in scratch.touched() {
            if self.estimate(i) + 1.0 > self.max_v {
                continue;
            }
            let score = scratch.get(i) * self.weights[i];
            if score > best_score || (score == best_score && i == x) {
                best_score = score;
                best_part = i;
            }
        }
        if best_part == x || best_score <= 0.0 {
            // Spill move: label propagation alone cannot drain a part whose remaining
            // vertices have no neighbours in an underweight part (isolated vertices
            // and deep-interior vertices). If the current part is over the target,
            // move the vertex to the globally most underweight part directly. This
            // preferentially relocates zero-degree vertices (whose move is free) and
            // is what lets the balance constraint be met on graphs with many tiny
            // components. Spill moves are invisible to the other ranks until the end
            // of the iteration, and every rank picks the same most-underweight target,
            // so they are charged at the full rank count to avoid collective
            // overshoot of that one part.
            if self.estimate(x) > self.imb_v {
                let p = self.size_v.len();
                let spill_target = (0..p)
                    .min_by(|&a, &b| {
                        self.spill_estimate(a)
                            .partial_cmp(&self.spill_estimate(b))
                            .unwrap()
                    })
                    .unwrap_or(x);
                if spill_target != x && self.spill_estimate(spill_target) + 1.0 <= self.imb_v {
                    return spill_target as i32;
                }
            }
            return NO_MOVE;
        }
        best_part as i32
    }

    fn apply(&mut self, v: u32, target: usize, parts: &[i32]) -> bool {
        let x = parts[v as usize] as usize;
        if self.estimate(target) + 1.0 > self.max_v {
            return false;
        }
        // A proposal is either a weighted label-propagation move (needs an attractive,
        // still-underweight target with a neighbour in it) or a spill (needs the
        // current part still over target and the destination under it at the
        // conservative charge).
        let (_, s_t) = recount_two(self.graph, v, parts, x, target);
        let normal = self.weights[target] > 0.0 && s_t > 0.0;
        if !normal {
            let over = self.estimate(x) > self.imb_v;
            if !(over && self.spill_estimate(target) + 1.0 <= self.imb_v) {
                return false;
            }
        }
        self.change_v[x] -= 1;
        self.change_v[target] += 1;
        self.weights[x] = self.weight_of(x);
        self.weights[target] = self.weight_of(target);
        true
    }
}

/// One pass of the vertex balancing phase (Algorithm 4): up to `params.balance_iters`
/// label-propagation iterations weighted towards underweight parts, under the
/// fixed-point perturbation policy in frontier mode. Must be called collectively.
#[allow(clippy::too_many_arguments)]
pub fn vertex_balance(
    ctx: &RankCtx,
    graph: &DistGraph,
    parts: &mut [i32],
    params: &PartitionParams,
    counter: &mut StageCounter,
    ws: &mut SweepWorkspace,
    ghosts: &GhostNeighborMap,
) {
    let p = params.num_parts;
    let nranks = ctx.nranks();
    let n_owned = graph.n_owned();
    let frontier_mode = params.sweep_mode == SweepMode::Frontier;
    let imb_v = params.target_max_vertices(graph.global_n());
    let mut size_v = global_vertex_counts(ctx, graph, parts, p);

    // The stage exists to meet the vertex-balance constraint; once it holds (a global
    // fact, so every rank takes the same branch), its churn is pure perturbation —
    // useful exactly when refinement has converged (globally empty frontier), where one
    // churn sweep lets the next refinement round escape its local optimum.
    let balanced = size_v.iter().all(|&s| (s as f64) <= imb_v);
    let sweep_cap = if frontier_mode && balanced {
        let global_active = ctx.allreduce_scalar_sum_u64(ws.engine.frontier.active_len() as u64);
        if global_active > 0 {
            0
        } else {
            1
        }
    } else {
        params.balance_iters
    };

    let SweepWorkspace {
        engine, counters, ..
    } = ws;
    // A balance pass on an already-balanced partition only perturbs; book it as churn
    // (a global fact, so every rank books identically).
    engine.set_stage(if balanced {
        StageKind::Churn
    } else {
        StageKind::Balance
    });
    let mut updates: Vec<PartUpdate> = Vec::new();
    for _ in 0..sweep_cap {
        let max_v = size_v.iter().map(|&s| s as f64).fold(imb_v, f64::max);
        // A capped churn sweep has no follow-up sweeps to correct collective
        // overshoot, so it charges changes at the conservative end-of-schedule rate.
        let mult = if sweep_cap == 1 {
            params
                .multiplier(nranks, counter.iter_tot)
                .max(nranks as f64)
        } else {
            params.multiplier(nranks, counter.iter_tot)
        };
        counters.reset_changes();
        for (w, &s) in counters.weight_a.iter_mut().zip(&size_v) {
            let denom = (s as f64).max(1.0);
            *w = (imb_v / denom - 1.0).max(0.0);
        }
        let mut stage = DistVertexBalance {
            graph,
            size_v: &size_v,
            change_v: &mut counters.change_v,
            weights: &mut counters.weight_a,
            imb_v,
            max_v,
            mult,
            spill_mult: mult.max(nranks as f64),
        };
        updates.clear();
        engine.sweep(
            n_owned,
            parts,
            false,
            BALANCE_CHUNK,
            &mut stage,
            dist_neighbors(graph),
            |v, part| updates.push((v, part)),
        );

        if std::env::var_os("XTRAPULP_DEBUG").is_some() {
            eprintln!(
                "[balance dbg] rank {} iter_tot {} moved {} sizes {:?}",
                ctx.rank(),
                counter.iter_tot,
                updates.len(),
                size_v
            );
        }
        push_part_updates_marking(ctx, graph, &updates, parts, ghosts, &mut engine.frontier);
        let mut all = Vec::with_capacity(p + 1);
        all.extend_from_slice(&counters.change_v);
        all.push(updates.len() as i64);
        let global = ctx.allreduce_sum_i64(&all);
        for i in 0..p {
            size_v[i] += global[i];
        }
        counter.iter_tot += 1;
        // A globally move-free balance sweep leaves sizes (hence weights and
        // admissibility) untouched, so every remaining sweep of this pass would be
        // identical: skip them. Gated on frontier mode so `Full` stays the faithful
        // legacy baseline.
        if frontier_mode && global[p] == 0 {
            break;
        }
    }
}

/// One distributed constrained-refinement sweep (Algorithm 5).
struct DistVertexRefine<'a> {
    graph: &'a DistGraph,
    size_v: &'a [i64],
    change_v: &'a mut [i64],
    max_v: f64,
    guard_mult: f64,
}

impl DistVertexRefine<'_> {
    #[inline]
    fn estimate(&self, i: usize) -> f64 {
        self.size_v[i] as f64 + self.guard_mult * self.change_v[i] as f64
    }
}

impl SweepStage for DistVertexRefine<'_> {
    fn propose(&self, v: u32, parts: &[i32], scratch: &mut ScoreScratch) -> i32 {
        let x = parts[v as usize] as usize;
        scratch.clear();
        for &u in self.graph.neighbors(v as LocalId) {
            scratch.add(parts[u as usize] as usize, 1.0);
        }
        let own_score = scratch.get(x);
        let mut best_part = x;
        let mut best_score = own_score;
        for &i in scratch.touched() {
            if i == x || self.estimate(i) + 1.0 > self.max_v {
                continue;
            }
            let score = scratch.get(i);
            if score > best_score {
                best_score = score;
                best_part = i;
            }
        }
        if best_part != x {
            best_part as i32
        } else {
            NO_MOVE
        }
    }

    fn apply(&mut self, v: u32, target: usize, parts: &[i32]) -> bool {
        let x = parts[v as usize] as usize;
        if self.estimate(target) + 1.0 > self.max_v {
            return false;
        }
        let (s_x, s_t) = recount_two(self.graph, v, parts, x, target);
        if s_t <= s_x {
            return false;
        }
        self.change_v[x] -= 1;
        self.change_v[target] += 1;
        true
    }
}

/// One pass of the vertex refinement phase (Algorithm 5): constrained label-propagation
/// iterations that greedily minimise the edge cut without letting any part exceed the
/// current maximum size (or the imbalance target, whichever is larger). Frontier-driven
/// with the [`RefineConvergence`] protocol; must be called collectively.
#[allow(clippy::too_many_arguments)]
pub fn vertex_refine(
    ctx: &RankCtx,
    graph: &DistGraph,
    parts: &mut [i32],
    params: &PartitionParams,
    counter: &mut StageCounter,
    ws: &mut SweepWorkspace,
    ghosts: &GhostNeighborMap,
    convergence: RefineConvergence,
) {
    let p = params.num_parts;
    let nranks = ctx.nranks();
    let n_owned = graph.n_owned();
    let frontier_mode = params.sweep_mode == SweepMode::Frontier;
    let imb_v = params.target_max_vertices(graph.global_n());
    // A globally-converged frontier-only pass does no work at all — skip the counter
    // collectives too. The check is on a global number, so every rank returns (or
    // proceeds) together.
    if frontier_mode && convergence == RefineConvergence::FrontierOnly {
        let global_active = ctx.allreduce_scalar_sum_u64(ws.engine.frontier.active_len() as u64);
        if global_active == 0 {
            return;
        }
    }
    let mut size_v = global_vertex_counts(ctx, graph, parts, p);

    let SweepWorkspace {
        engine, counters, ..
    } = ws;
    engine.set_stage(StageKind::Refine);
    // A pass inheriting a large global frontier opens with one full sweep: it costs
    // barely more than the frontier sweep it replaces and restores the legacy
    // schedule's per-round global coverage. The decision is made on global numbers, so
    // every rank clears (or keeps) its frontier together.
    if frontier_mode && convergence == RefineConvergence::Polish {
        let global_active = ctx.allreduce_scalar_sum_u64(engine.frontier.active_len() as u64);
        if global_active > graph.global_n() / 8 {
            engine.frontier.clear();
        }
    }

    let budget = refine_budget(params.refine_iters, params.sweep_mode);
    let mut updates: Vec<PartUpdate> = Vec::new();
    for _ in 0..budget {
        let use_frontier = if frontier_mode {
            let global_active = ctx.allreduce_scalar_sum_u64(engine.frontier.active_len() as u64);
            if global_active == 0 && convergence == RefineConvergence::FrontierOnly {
                break;
            }
            global_active > 0
        } else {
            false
        };

        let max_v = size_v.iter().map(|&s| s as f64).fold(imb_v, f64::max);
        let mult = params.multiplier(nranks, counter.iter_tot);
        // Refinement must never push a part above the current maximum, even when every
        // rank funnels vertices into the same popular part within one stale iteration,
        // so admissibility is checked with the full rank count (each rank claims at
        // most its 1/nranks share of the remaining headroom).
        let guard_mult = mult.max(nranks as f64);
        counters.reset_changes();
        let mut stage = DistVertexRefine {
            graph,
            size_v: &size_v,
            change_v: &mut counters.change_v,
            max_v,
            guard_mult,
        };
        updates.clear();
        engine.sweep(
            n_owned,
            parts,
            use_frontier,
            SWEEP_CHUNK,
            &mut stage,
            dist_neighbors(graph),
            |v, part| updates.push((v, part)),
        );

        push_part_updates_marking(ctx, graph, &updates, parts, ghosts, &mut engine.frontier);
        let mut all = Vec::with_capacity(p + 1);
        all.extend_from_slice(&counters.change_v);
        all.push(updates.len() as i64);
        let global = ctx.allreduce_sum_i64(&all);
        for i in 0..p {
            size_v[i] += global[i];
        }
        counter.iter_tot += 1;
        // Global fixed point: a move-free full sweep ends the pass in frontier mode
        // (the legacy schedule always ran its full budget); a move-free frontier sweep
        // ends it only without polish.
        if frontier_mode
            && global[p] == 0
            && (!use_frontier || convergence == RefineConvergence::FrontierOnly)
        {
            break;
        }
    }
}

/// Explicit final rebalance pass, the distributed analogue of the multilevel drivers'
/// `rebalance` (PR 1): after the stage schedule, drain any part still above the vertex
/// target by moving its boundary vertices to the admissible part keeping the most
/// adjacent edges (the globally lightest part as the interior-vertex fallback).
///
/// Weighted label propagation converges to the target on most inputs, but on small
/// skewed graphs (BA hubs, small-world shortcut clusters) the attraction weights can
/// stall above it — this pass closes exactly that gap, so cold runs meet the 1.1
/// imbalance target and warm starts are not locked out of the refine-only fast path.
/// Per-rank moves are throttled to their `1/nranks` share of each part's excess and
/// destinations are charged at the full rank count, so no collective overshoot is
/// possible. A no-op when the constraint already holds; must be called collectively.
pub fn final_rebalance(
    ctx: &RankCtx,
    graph: &DistGraph,
    parts: &mut [i32],
    params: &PartitionParams,
    ws: &mut SweepWorkspace,
    ghosts: &GhostNeighborMap,
) {
    let p = params.num_parts;
    let nranks = ctx.nranks();
    let n_owned = graph.n_owned();
    let imb_v = params.target_max_vertices(graph.global_n());
    let imb_e = params.target_max_arcs(2 * graph.global_m());
    let mut size_v = global_vertex_counts(ctx, graph, parts, p);
    let mut size_e = global_arc_counts(ctx, graph, parts, p);
    let mut scratch = ScoreScratch::new(p);

    // Rounding-level overshoot (a converged run routinely lands within a couple of
    // percent of the fractional target) is noise, not imbalance — and draining it
    // would trade edge balance for nothing. The pass engages only beyond the same
    // slack the warm-start eligibility check uses, then drains to the exact target.
    if size_v
        .iter()
        .all(|&s| (s as f64) <= imb_v * crate::pulp::WARM_BALANCE_SLACK)
    {
        return;
    }

    let max_rounds = 4 * params.balance_iters.max(1);
    let SweepWorkspace {
        engine, counters, ..
    } = ws;
    for _ in 0..max_rounds {
        // Global state, so every rank takes the same branch.
        if size_v.iter().all(|&s| (s as f64) <= imb_v) {
            break;
        }
        counters.reset_changes();
        let change_v = &mut counters.change_v;
        let change_e = &mut counters.change_e;
        // This rank may move at most its share of each part's excess per round.
        let mut quota: Vec<i64> = size_v
            .iter()
            .map(|&s| (((s as f64 - imb_v).max(0.0)) / nranks as f64).ceil() as i64)
            .collect();
        let admissible = |i: usize, change_v: &[i64]| -> bool {
            size_v[i] as f64 + nranks as f64 * change_v[i] as f64 + 1.0 <= imb_v
        };
        // Destinations are preferred while they keep the *edge* constraint too —
        // fixing the vertex balance must not push a part's arc load past its target
        // and lock warm starts out of the refine-only fast path — but the edge cap is
        // soft: with no arc-admissible destination the vertex constraint wins.
        let arc_room = |i: usize, change_e: &[i64], deg: f64| -> bool {
            size_e[i] as f64 + nranks as f64 * change_e[i] as f64 + deg <= imb_e
        };
        let mut updates: Vec<PartUpdate> = Vec::new();
        for v in 0..n_owned {
            let x = parts[v] as usize;
            if quota[x] <= 0 {
                continue;
            }
            let deg = graph.degree_owned(v as LocalId) as f64;
            scratch.clear();
            for &u in graph.neighbors(v as LocalId) {
                scratch.add(parts[u as usize] as usize, 1.0);
            }
            // Cut-aware first choice: the admissible neighbouring part retaining the
            // most adjacent arcs, preferring parts with arc headroom.
            let pick = |require_arc_room: bool, change_v: &[i64], change_e: &[i64]| {
                let mut best: Option<usize> = None;
                let mut best_score = 0.0f64;
                for &i in scratch.touched() {
                    if i == x
                        || !admissible(i, change_v)
                        || (require_arc_room && !arc_room(i, change_e, deg))
                    {
                        continue;
                    }
                    if best.is_none() || scratch.get(i) > best_score {
                        best = Some(i);
                        best_score = scratch.get(i);
                    }
                }
                best.or_else(|| {
                    (0..p)
                        .filter(|&i| {
                            i != x
                                && admissible(i, change_v)
                                && (!require_arc_room || arc_room(i, change_e, deg))
                        })
                        .min_by_key(|&i| (size_v[i] + nranks as i64 * change_v[i], i))
                })
            };
            let best = pick(true, change_v, change_e).or_else(|| pick(false, change_v, change_e));
            if let Some(target) = best {
                quota[x] -= 1;
                change_v[x] -= 1;
                change_v[target] += 1;
                change_e[x] -= deg as i64;
                change_e[target] += deg as i64;
                parts[v] = target as i32;
                updates.push((v as LocalId, target as i32));
            }
        }
        push_part_updates_marking(ctx, graph, &updates, parts, ghosts, &mut engine.frontier);
        let mut all = Vec::with_capacity(2 * p + 1);
        all.extend_from_slice(change_v);
        all.extend_from_slice(change_e);
        all.push(updates.len() as i64);
        let global = ctx.allreduce_sum_i64(&all);
        for i in 0..p {
            size_v[i] += global[i];
            size_e[i] += global[p + i];
        }
        if global[2 * p] == 0 {
            // No rank can move anything else (e.g. every admissible destination is
            // full); leave the partition as balanced as it can get.
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::init_partition;
    use crate::metrics::{is_valid_partition, PartitionQuality};
    use crate::params::InitStrategy;
    use xtrapulp_comm::Runtime;
    use xtrapulp_graph::Distribution;

    fn grid_edges(w: u64, h: u64) -> Vec<(u64, u64)> {
        let mut e = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let id = y * w + x;
                if x + 1 < w {
                    e.push((id, id + 1));
                }
                if y + 1 < h {
                    e.push((id, id + w));
                }
            }
        }
        e
    }

    fn stage_env(
        graph: &DistGraph,
        params: &PartitionParams,
    ) -> (SweepWorkspace, GhostNeighborMap) {
        let mut ws = SweepWorkspace::new(params.sweep_threads);
        ws.begin_run(graph.n_owned(), params.num_parts);
        ws.engine.frontier.seed_all(graph.n_owned());
        (ws, GhostNeighborMap::build(graph))
    }

    #[test]
    fn balance_improves_vertex_imbalance() {
        let edges = grid_edges(16, 16);
        let n = 256u64;
        let out = Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, n, &edges);
            let params = PartitionParams {
                num_parts: 4,
                seed: 3,
                ..Default::default()
            };
            let mut parts = init_partition(ctx, &g, &params);
            let (mut ws, ghosts) = stage_env(&g, &params);
            let before = PartitionQuality::evaluate_dist(ctx, &g, &parts, 4);
            let mut counter = StageCounter::default();
            for _ in 0..params.outer_iters {
                vertex_balance(ctx, &g, &mut parts, &params, &mut counter, &mut ws, &ghosts);
                vertex_refine(
                    ctx,
                    &g,
                    &mut parts,
                    &params,
                    &mut counter,
                    &mut ws,
                    &ghosts,
                    RefineConvergence::Polish,
                );
            }
            final_rebalance(ctx, &g, &mut parts, &params, &mut ws, &ghosts);
            let after = PartitionQuality::evaluate_dist(ctx, &g, &parts, 4);
            assert!(is_valid_partition(&parts, 4));
            (before, after)
        });
        let (before, after) = out[0];
        // The BFS-grow initialisation can be arbitrarily imbalanced; after balancing
        // plus the explicit final rebalance the constraint (10% slack plus rounding on
        // a 64-vertex-per-part grid) must be met, not merely approached.
        assert!(
            after.vertex_imbalance <= before.vertex_imbalance.max(1.2),
            "balance phase made imbalance worse: {} -> {}",
            before.vertex_imbalance,
            after.vertex_imbalance
        );
        assert!(
            after.vertex_imbalance <= 1.12,
            "vertex imbalance still {} after balancing + rebalance",
            after.vertex_imbalance
        );
    }

    #[test]
    fn refine_does_not_break_validity_and_keeps_cut_reasonable() {
        let edges = grid_edges(12, 12);
        let n = 144u64;
        Runtime::run(3, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Cyclic, n, &edges);
            let params = PartitionParams {
                num_parts: 4,
                init: InitStrategy::Random,
                seed: 7,
                ..Default::default()
            };
            let mut parts = init_partition(ctx, &g, &params);
            let (mut ws, ghosts) = stage_env(&g, &params);
            let before = PartitionQuality::evaluate_dist(ctx, &g, &parts, 4);
            let mut counter = StageCounter::default();
            vertex_refine(
                ctx,
                &g,
                &mut parts,
                &params,
                &mut counter,
                &mut ws,
                &ghosts,
                RefineConvergence::Polish,
            );
            let after = PartitionQuality::evaluate_dist(ctx, &g, &parts, 4);
            assert!(is_valid_partition(&parts, 4));
            // Random initialisation cuts nearly everything; refinement must improve it.
            assert!(
                after.edge_cut <= before.edge_cut,
                "refinement increased the cut: {} -> {}",
                before.edge_cut,
                after.edge_cut
            );
        });
    }

    #[test]
    fn full_mode_counters_advance_with_iterations() {
        let edges = grid_edges(8, 8);
        Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 64, &edges);
            let params = PartitionParams {
                num_parts: 2,
                sweep_mode: SweepMode::Full,
                ..PartitionParams::with_parts(2)
            };
            let mut parts = init_partition(ctx, &g, &params);
            let (mut ws, ghosts) = stage_env(&g, &params);
            let mut counter = StageCounter::default();
            vertex_balance(ctx, &g, &mut parts, &params, &mut counter, &mut ws, &ghosts);
            assert_eq!(counter.iter_tot, params.balance_iters);
            vertex_refine(
                ctx,
                &g,
                &mut parts,
                &params,
                &mut counter,
                &mut ws,
                &ghosts,
                RefineConvergence::Polish,
            );
            assert_eq!(counter.iter_tot, params.balance_iters + params.refine_iters);
        });
    }

    #[test]
    fn ghost_updates_mark_owned_neighbors_into_the_frontier() {
        // A ring split over two ranks: every boundary vertex has a ghost neighbour.
        let edges: Vec<(u64, u64)> = (0..12).map(|i| (i, (i + 1) % 12)).collect();
        Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 12, &edges);
            let ghosts = GhostNeighborMap::build(&g);
            let mut parts = vec![0i32; g.n_total()];
            let mut frontier = crate::sweep::Frontier::default();
            frontier.ensure(g.n_owned());
            // Every rank reassigns its first owned vertex.
            let updates: Vec<PartUpdate> = vec![(0, ctx.rank() as i32 + 1)];
            parts[0] = ctx.rank() as i32 + 1;
            push_part_updates_marking(ctx, &g, &updates, &mut parts, &ghosts, &mut frontier);
            // The other rank's first vertex is adjacent to one of ours (ring), so at
            // least one owned neighbour of an updated ghost must now be active.
            assert!(
                frontier.active_len() > 0,
                "rank {}: ghost change did not reactivate owned neighbours",
                ctx.rank()
            );
        });
    }

    #[test]
    fn global_count_helpers_sum_to_totals() {
        let edges = grid_edges(10, 10);
        Runtime::run(4, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Hashed, 100, &edges);
            let params = PartitionParams {
                num_parts: 5,
                init: InitStrategy::VertexBlock,
                ..Default::default()
            };
            let parts = init_partition(ctx, &g, &params);
            let verts = global_vertex_counts(ctx, &g, &parts, 5);
            let arcs = global_arc_counts(ctx, &g, &parts, 5);
            let cuts = global_cut_counts(ctx, &g, &parts, 5);
            assert_eq!(verts.iter().sum::<i64>(), 100);
            assert_eq!(arcs.iter().sum::<i64>() as u64, 2 * g.global_m());
            assert!(cuts.iter().sum::<i64>() >= 0);
        });
    }
}
