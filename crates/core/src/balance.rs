//! The vertex balancing and refinement phases (Algorithms 4 and 5 of the paper).
//!
//! **Balancing** runs weighted label propagation: the attractiveness of part `i` to a
//! vertex is the (degree-weighted) number of its neighbours in `i`, scaled by the weight
//! `Wv(i) = max(Imb_v / (Sv(i) + mult * Cv(i)) - 1, 0)` which is large for underweight
//! parts and zero for parts at or above the target size. **Refinement** is a constrained
//! label propagation / FM-style pass that greedily reduces the cut while never letting a
//! part grow past the current maximum.
//!
//! The distributed-memory subtlety is the dynamic multiplier `mult`: because every rank
//! reassigns vertices using part sizes that are only refreshed at the end of the
//! iteration, an underweight part would receive a flood of vertices from *every* rank at
//! once and overshoot wildly. Each rank therefore bounds its own contribution by charging
//! `mult × (its local change)` against the global size estimate, with `mult` ramping
//! linearly from `nprocs·Y` (each rank may claim ~1/Y of the remaining headroom early on)
//! to `nprocs·X` (each rank claims exactly its share at the end).

use xtrapulp_comm::RankCtx;
use xtrapulp_graph::{DistGraph, LocalId};

use crate::exchange::{push_part_updates, PartUpdate};
use crate::params::PartitionParams;

/// Mutable per-stage counters shared by the balancing phases: the running total iteration
/// counter that drives the multiplier schedule.
#[derive(Debug, Default, Clone, Copy)]
pub struct StageCounter {
    /// Number of balance/refine iterations performed so far in the current stage.
    pub iter_tot: usize,
}

/// Global part sizes in vertices, computed collectively.
pub fn global_vertex_counts(
    ctx: &RankCtx,
    graph: &DistGraph,
    parts: &[i32],
    num_parts: usize,
) -> Vec<i64> {
    let mut local = vec![0i64; num_parts];
    for v in 0..graph.n_owned() {
        local[parts[v] as usize] += 1;
    }
    ctx.allreduce_sum_i64(&local)
}

/// Global part sizes in arcs (vertex degree sums), computed collectively.
pub fn global_arc_counts(
    ctx: &RankCtx,
    graph: &DistGraph,
    parts: &[i32],
    num_parts: usize,
) -> Vec<i64> {
    let mut local = vec![0i64; num_parts];
    for v in 0..graph.n_owned() {
        local[parts[v] as usize] += graph.degree_owned(v as LocalId) as i64;
    }
    ctx.allreduce_sum_i64(&local)
}

/// Global per-part cut arc counts (arcs whose source lies in the part and whose endpoint
/// is in a different part), computed collectively.
pub fn global_cut_counts(
    ctx: &RankCtx,
    graph: &DistGraph,
    parts: &[i32],
    num_parts: usize,
) -> Vec<i64> {
    let mut local = vec![0i64; num_parts];
    for v in 0..graph.n_owned() {
        let pv = parts[v];
        for &u in graph.neighbors(v as LocalId) {
            if parts[u as usize] != pv {
                local[pv as usize] += 1;
            }
        }
    }
    ctx.allreduce_sum_i64(&local)
}

/// Scratch buffers reused across vertices to avoid per-vertex allocation: a dense score
/// array plus the list of touched entries for sparse clearing.
pub(crate) struct ScoreScratch {
    scores: Vec<f64>,
    touched: Vec<usize>,
}

impl ScoreScratch {
    pub(crate) fn new(num_parts: usize) -> Self {
        ScoreScratch {
            scores: vec![0.0; num_parts],
            touched: Vec::with_capacity(64),
        }
    }

    #[inline]
    pub(crate) fn clear(&mut self) {
        for &t in &self.touched {
            self.scores[t] = 0.0;
        }
        self.touched.clear();
    }

    #[inline]
    pub(crate) fn add(&mut self, part: usize, value: f64) {
        if self.scores[part] == 0.0 && !self.touched.contains(&part) {
            self.touched.push(part);
        }
        self.scores[part] += value;
    }

    #[inline]
    pub(crate) fn get(&self, part: usize) -> f64 {
        self.scores[part]
    }

    #[inline]
    pub(crate) fn touched(&self) -> &[usize] {
        &self.touched
    }
}

/// One pass of the vertex balancing phase (Algorithm 4): `params.balance_iters`
/// label-propagation iterations weighted towards underweight parts.
pub fn vertex_balance(
    ctx: &RankCtx,
    graph: &DistGraph,
    parts: &mut [i32],
    params: &PartitionParams,
    counter: &mut StageCounter,
) {
    let p = params.num_parts;
    let nranks = ctx.nranks();
    let imb_v = params.target_max_vertices(graph.global_n());
    let mut size_v = global_vertex_counts(ctx, graph, parts, p);

    let mut scratch = ScoreScratch::new(p);
    for _ in 0..params.balance_iters {
        let max_v = size_v.iter().map(|&s| s as f64).fold(imb_v, f64::max);
        let mult = params.multiplier(nranks, counter.iter_tot);
        let mut change_v = vec![0i64; p];
        let weight = |size: i64, change: i64| -> f64 {
            let denom = (size as f64 + mult * change as f64).max(1.0);
            (imb_v / denom - 1.0).max(0.0)
        };
        let mut weights: Vec<f64> = (0..p).map(|i| weight(size_v[i], 0)).collect();

        let mut updates: Vec<PartUpdate> = Vec::new();
        for v in 0..graph.n_owned() {
            let x = parts[v] as usize;
            scratch.clear();
            for &u in graph.neighbors(v as LocalId) {
                let pu = parts[u as usize] as usize;
                scratch.add(pu, graph.degree(u) as f64);
            }
            // Pick the best-scoring admissible part; ties keep the current part.
            let mut best_part = x;
            let mut best_score = 0.0f64;
            for &i in scratch.touched() {
                if size_v[i] as f64 + mult * change_v[i] as f64 + 1.0 > max_v {
                    continue;
                }
                let score = scratch.get(i) * weights[i];
                if score > best_score || (score == best_score && i == x) {
                    best_score = score;
                    best_part = i;
                }
            }
            if best_part == x || best_score <= 0.0 {
                // Spill move: label propagation alone cannot drain a part whose remaining
                // vertices have no neighbours in an underweight part (isolated vertices
                // and deep-interior vertices). If the current part is over the target,
                // move the vertex to the globally most underweight part directly. This
                // preferentially relocates zero-degree vertices (whose move is free) and
                // is what lets the balance constraint be met on graphs with many tiny
                // components.
                let over_target = size_v[x] as f64 + mult * change_v[x] as f64 > imb_v;
                if over_target {
                    // Spill moves are invisible to the other ranks until the end of the
                    // iteration, and every rank picks the same most-underweight target,
                    // so charge them at the full rank count to avoid collective
                    // overshoot of that one part.
                    let spill_mult = mult.max(nranks as f64);
                    let spill_target = (0..p)
                        .min_by(|&a, &b| {
                            let ea = size_v[a] as f64 + spill_mult * change_v[a] as f64;
                            let eb = size_v[b] as f64 + spill_mult * change_v[b] as f64;
                            ea.partial_cmp(&eb).unwrap()
                        })
                        .unwrap_or(x);
                    let estimate =
                        size_v[spill_target] as f64 + spill_mult * change_v[spill_target] as f64;
                    if spill_target != x && estimate + 1.0 <= imb_v {
                        best_part = spill_target;
                        best_score = 1.0;
                    }
                }
            }
            if best_part != x && best_score > 0.0 {
                change_v[x] -= 1;
                change_v[best_part] += 1;
                weights[x] = weight(size_v[x], change_v[x]);
                weights[best_part] = weight(size_v[best_part], change_v[best_part]);
                parts[v] = best_part as i32;
                updates.push((v as LocalId, best_part as i32));
            }
        }

        if std::env::var_os("XTRAPULP_DEBUG").is_some() {
            eprintln!(
                "[balance dbg] rank {} iter_tot {} moved {} sizes {:?}",
                ctx.rank(),
                counter.iter_tot,
                updates.len(),
                size_v
            );
        }
        push_part_updates(ctx, graph, &updates, parts);
        let global_change = ctx.allreduce_sum_i64(&change_v);
        for i in 0..p {
            size_v[i] += global_change[i];
        }
        counter.iter_tot += 1;
    }
}

/// One pass of the vertex refinement phase (Algorithm 5): `params.refine_iters`
/// constrained label-propagation iterations that greedily minimise the edge cut without
/// letting any part exceed the current maximum size (or the imbalance target, whichever
/// is larger).
pub fn vertex_refine(
    ctx: &RankCtx,
    graph: &DistGraph,
    parts: &mut [i32],
    params: &PartitionParams,
    counter: &mut StageCounter,
) {
    let p = params.num_parts;
    let nranks = ctx.nranks();
    let imb_v = params.target_max_vertices(graph.global_n());
    let mut size_v = global_vertex_counts(ctx, graph, parts, p);

    let mut scratch = ScoreScratch::new(p);
    for _ in 0..params.refine_iters {
        let max_v = size_v.iter().map(|&s| s as f64).fold(imb_v, f64::max);
        let mult = params.multiplier(nranks, counter.iter_tot);
        // Refinement must never push a part above the current maximum, even when every
        // rank funnels vertices into the same popular part within one stale iteration, so
        // admissibility is checked with the full rank count (each rank claims at most its
        // 1/nranks share of the remaining headroom).
        let guard_mult = mult.max(nranks as f64);
        let mut change_v = vec![0i64; p];

        let mut updates: Vec<PartUpdate> = Vec::new();
        for v in 0..graph.n_owned() {
            let x = parts[v] as usize;
            scratch.clear();
            for &u in graph.neighbors(v as LocalId) {
                scratch.add(parts[u as usize] as usize, 1.0);
            }
            let own_score = scratch.get(x);
            let mut best_part = x;
            let mut best_score = own_score;
            for &i in scratch.touched() {
                if i == x {
                    continue;
                }
                if size_v[i] as f64 + guard_mult * change_v[i] as f64 + 1.0 > max_v {
                    continue;
                }
                let score = scratch.get(i);
                if score > best_score {
                    best_score = score;
                    best_part = i;
                }
            }
            if best_part != x {
                change_v[x] -= 1;
                change_v[best_part] += 1;
                parts[v] = best_part as i32;
                updates.push((v as LocalId, best_part as i32));
            }
        }

        push_part_updates(ctx, graph, &updates, parts);
        let global_change = ctx.allreduce_sum_i64(&change_v);
        for i in 0..p {
            size_v[i] += global_change[i];
        }
        counter.iter_tot += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::init_partition;
    use crate::metrics::{is_valid_partition, PartitionQuality};
    use crate::params::InitStrategy;
    use xtrapulp_comm::Runtime;
    use xtrapulp_graph::Distribution;

    fn grid_edges(w: u64, h: u64) -> Vec<(u64, u64)> {
        let mut e = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let id = y * w + x;
                if x + 1 < w {
                    e.push((id, id + 1));
                }
                if y + 1 < h {
                    e.push((id, id + w));
                }
            }
        }
        e
    }

    #[test]
    fn balance_improves_vertex_imbalance() {
        let edges = grid_edges(16, 16);
        let n = 256u64;
        let out = Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, n, &edges);
            let params = PartitionParams {
                num_parts: 4,
                seed: 3,
                ..Default::default()
            };
            let mut parts = init_partition(ctx, &g, &params);
            let before = PartitionQuality::evaluate_dist(ctx, &g, &parts, 4);
            let mut counter = StageCounter::default();
            for _ in 0..params.outer_iters {
                vertex_balance(ctx, &g, &mut parts, &params, &mut counter);
                vertex_refine(ctx, &g, &mut parts, &params, &mut counter);
            }
            let after = PartitionQuality::evaluate_dist(ctx, &g, &parts, 4);
            assert!(is_valid_partition(&parts, 4));
            (before, after)
        });
        let (before, after) = out[0];
        // The BFS-grow initialisation can be arbitrarily imbalanced; after balancing the
        // constraint (10% slack, i.e. ratio <= 1.1 + rounding) must be approached.
        assert!(
            after.vertex_imbalance <= before.vertex_imbalance.max(1.2),
            "balance phase made imbalance worse: {} -> {}",
            before.vertex_imbalance,
            after.vertex_imbalance
        );
        assert!(
            after.vertex_imbalance < 1.35,
            "vertex imbalance still {} after balancing",
            after.vertex_imbalance
        );
    }

    #[test]
    fn refine_does_not_break_validity_and_keeps_cut_reasonable() {
        let edges = grid_edges(12, 12);
        let n = 144u64;
        Runtime::run(3, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Cyclic, n, &edges);
            let params = PartitionParams {
                num_parts: 4,
                init: InitStrategy::Random,
                seed: 7,
                ..Default::default()
            };
            let mut parts = init_partition(ctx, &g, &params);
            let before = PartitionQuality::evaluate_dist(ctx, &g, &parts, 4);
            let mut counter = StageCounter::default();
            vertex_refine(ctx, &g, &mut parts, &params, &mut counter);
            let after = PartitionQuality::evaluate_dist(ctx, &g, &parts, 4);
            assert!(is_valid_partition(&parts, 4));
            // Random initialisation cuts nearly everything; refinement must improve it.
            assert!(
                after.edge_cut <= before.edge_cut,
                "refinement increased the cut: {} -> {}",
                before.edge_cut,
                after.edge_cut
            );
        });
    }

    #[test]
    fn counters_advance_with_iterations() {
        let edges = grid_edges(8, 8);
        Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 64, &edges);
            let params = PartitionParams::with_parts(2);
            let mut parts = init_partition(ctx, &g, &params);
            let mut counter = StageCounter::default();
            vertex_balance(ctx, &g, &mut parts, &params, &mut counter);
            assert_eq!(counter.iter_tot, params.balance_iters);
            vertex_refine(ctx, &g, &mut parts, &params, &mut counter);
            assert_eq!(counter.iter_tot, params.balance_iters + params.refine_iters);
        });
    }

    #[test]
    fn global_count_helpers_sum_to_totals() {
        let edges = grid_edges(10, 10);
        Runtime::run(4, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Hashed, 100, &edges);
            let params = PartitionParams {
                num_parts: 5,
                init: InitStrategy::VertexBlock,
                ..Default::default()
            };
            let parts = init_partition(ctx, &g, &params);
            let verts = global_vertex_counts(ctx, &g, &parts, 5);
            let arcs = global_arc_counts(ctx, &g, &parts, 5);
            let cuts = global_cut_counts(ctx, &g, &parts, 5);
            assert_eq!(verts.iter().sum::<i64>(), 100);
            assert_eq!(arcs.iter().sum::<i64>() as u64, 2 * g.global_m());
            assert!(cuts.iter().sum::<i64>() >= 0);
        });
    }
}
