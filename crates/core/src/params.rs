//! Partitioning parameters.
//!
//! The defaults mirror the paper exactly: three outer iterations, five balancing and ten
//! refinement iterations per stage, 10% vertex and edge imbalance, and the dynamic
//! multiplier constants `X = 1.0`, `Y = 0.25` selected in §V-D.

use serde::{Deserialize, Serialize};

use crate::error::PartitionError;
use crate::sweep::SweepMode;

/// How the initial part assignment is produced before the balancing stages run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitStrategy {
    /// The paper's hybrid initialisation (Algorithm 2): random roots are grown
    /// breadth-first, each unassigned vertex adopting a random neighbouring part.
    BfsGrow,
    /// Uniform random part assignment.
    Random,
    /// Contiguous vertex blocks (the paper uses this before balancing in the Fig. 8
    /// analytics study, exploiting the locality of crawl orderings).
    VertexBlock,
}

/// Parameters controlling an XtraPuLP (or PuLP) run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionParams {
    /// Number of parts to compute.
    pub num_parts: usize,
    /// Allowed vertex imbalance ratio `Ratv`; the target max part size is
    /// `(1 + vertex_imbalance) * n / p`.
    pub vertex_imbalance: f64,
    /// Allowed edge imbalance ratio `Rate`; the target max per-part edge count is
    /// `(1 + edge_imbalance) * 2m / p` (counted in arcs, i.e. vertex-degree sums).
    pub edge_imbalance: f64,
    /// Number of outer balance/refine rounds per stage (`I_outer`, paper default 3).
    pub outer_iters: usize,
    /// Balancing iterations per round (`I_bal`, paper default 5).
    pub balance_iters: usize,
    /// Refinement iterations per round (`I_ref`, paper default 10).
    pub refine_iters: usize,
    /// Final value of the dynamic multiplier schedule (`X`, paper default 1.0).
    pub mult_x: f64,
    /// Initial value of the dynamic multiplier schedule (`Y`, paper default 0.25).
    pub mult_y: f64,
    /// Initialisation strategy.
    pub init: InitStrategy,
    /// Run the edge-balancing stage (the multi-constraint/multi-objective part of
    /// PuLP-MM). Disabled for the single-constraint single-objective comparison of
    /// Fig. 6.
    pub edge_balance_stage: bool,
    /// Outer balance/refine rounds per stage for *warm-started* runs (repartitioning
    /// from a previous part vector after a small graph mutation). Label propagation
    /// converges from a good seed in far fewer sweeps than from scratch, which is what
    /// makes incremental repartitioning cheap; `0` means seed-only (new vertices are
    /// assigned greedily, nothing is refined).
    pub warm_outer_iters: usize,
    /// Sweep strategy: frontier-driven active-vertex sweeps (the default) or the
    /// legacy full `0..n` sweeps, kept as the measured baseline for `bench_sweep` and
    /// the frontier-vs-full parity tests. See [`crate::sweep`].
    pub sweep_mode: SweepMode,
    /// Worker threads for the intra-rank parallel proposal phase of each sweep
    /// (`0` = auto: `XTRAPULP_THREADS`, then the machine's available parallelism).
    /// Results are bit-identical for every thread count.
    pub sweep_threads: usize,
    /// RNG seed; every stage derives its own deterministic stream from it.
    pub seed: u64,
}

impl Default for PartitionParams {
    fn default() -> Self {
        PartitionParams {
            num_parts: 16,
            vertex_imbalance: 0.10,
            edge_imbalance: 0.10,
            outer_iters: 3,
            balance_iters: 5,
            refine_iters: 10,
            mult_x: 1.0,
            mult_y: 0.25,
            init: InitStrategy::BfsGrow,
            edge_balance_stage: true,
            warm_outer_iters: 1,
            sweep_mode: SweepMode::Frontier,
            sweep_threads: 0,
            seed: 0xB1_7E5,
        }
    }
}

impl PartitionParams {
    /// Convenience constructor for `num_parts` parts with all other values at the paper
    /// defaults.
    pub fn with_parts(num_parts: usize) -> Self {
        PartitionParams {
            num_parts,
            ..Default::default()
        }
    }

    /// Total number of balance+refine iterations per stage (`I_tot` in the paper), which
    /// normalises the multiplier schedule.
    pub fn total_iters(&self) -> usize {
        self.outer_iters * (self.balance_iters + self.refine_iters)
    }

    /// Target maximum number of vertices per part (`Imb_v`).
    pub fn target_max_vertices(&self, global_n: u64) -> f64 {
        (1.0 + self.vertex_imbalance) * global_n as f64 / self.num_parts as f64
    }

    /// Target maximum number of arcs (degree sum) per part (`Imb_e`).
    pub fn target_max_arcs(&self, global_arcs: u64) -> f64 {
        (1.0 + self.edge_imbalance) * global_arcs as f64 / self.num_parts as f64
    }

    /// The dynamic multiplier `mult = nprocs * ((X - Y) * iter_tot / I_tot + Y)` that
    /// throttles how many vertices a single rank may move into one part per iteration.
    ///
    /// The value is clamped from below at 1.0: a rank always knows its *own* changes
    /// exactly, so charging them at less than face value (which the raw formula produces
    /// for very small rank counts or tiny X/Y) would let a single rank overshoot a part's
    /// target all by itself. At the paper's scales (hundreds to thousands of ranks) the
    /// clamp never engages.
    pub fn multiplier(&self, nranks: usize, iter_tot: usize) -> f64 {
        let frac = iter_tot as f64 / self.total_iters().max(1) as f64;
        (nranks as f64 * ((self.mult_x - self.mult_y) * frac + self.mult_y)).max(1.0)
    }

    /// Validate parameter sanity, reporting the first violation as a typed error.
    ///
    /// This is the request-path guard: every
    /// [`Partitioner::try_partition`](crate::Partitioner::try_partition)
    /// implementation calls it before touching the graph or the rank runtime, so
    /// malformed parameters are rejected with an `Err` instead of a panic.
    pub fn validate(&self) -> Result<(), PartitionError> {
        if self.num_parts < 1 {
            return Err(PartitionError::InvalidNumParts {
                got: self.num_parts,
            });
        }
        for (which, value) in [
            ("vertex_imbalance", self.vertex_imbalance),
            ("edge_imbalance", self.edge_imbalance),
        ] {
            if value.is_nan() || value < 0.0 {
                return Err(PartitionError::InvalidImbalance {
                    which,
                    got: format!("{value}"),
                });
            }
        }
        for (which, value) in [("mult_x", self.mult_x), ("mult_y", self.mult_y)] {
            if value.is_nan() || value < 0.0 {
                return Err(PartitionError::InvalidMultiplier {
                    which,
                    got: format!("{value}"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let p = PartitionParams::default();
        assert_eq!(p.outer_iters, 3);
        assert_eq!(p.balance_iters, 5);
        assert_eq!(p.refine_iters, 10);
        assert_eq!(p.total_iters(), 45);
        assert!((p.mult_x - 1.0).abs() < 1e-12);
        assert!((p.mult_y - 0.25).abs() < 1e-12);
        assert!((p.vertex_imbalance - 0.10).abs() < 1e-12);
    }

    #[test]
    fn multiplier_schedule_is_linear_between_y_and_x() {
        let p = PartitionParams::default();
        let nranks = 8;
        let at_start = p.multiplier(nranks, 0);
        let at_end = p.multiplier(nranks, p.total_iters());
        assert!((at_start - 8.0 * 0.25).abs() < 1e-9);
        assert!((at_end - 8.0 * 1.0).abs() < 1e-9);
        let mid = p.multiplier(nranks, p.total_iters() / 2);
        assert!(mid > at_start && mid < at_end);
    }

    #[test]
    fn target_sizes_scale_with_imbalance() {
        let p = PartitionParams::with_parts(4);
        assert!((p.target_max_vertices(100) - 27.5).abs() < 1e-9);
        assert!((p.target_max_arcs(400) - 110.0).abs() < 1e-9);
    }

    #[test]
    fn zero_parts_is_a_typed_error_not_a_panic() {
        let p = PartitionParams {
            num_parts: 0,
            ..Default::default()
        };
        assert_eq!(
            p.validate(),
            Err(PartitionError::InvalidNumParts { got: 0 })
        );
    }

    #[test]
    fn negative_and_nan_ratios_are_typed_errors() {
        let p = PartitionParams {
            vertex_imbalance: -0.1,
            ..Default::default()
        };
        assert!(matches!(
            p.validate(),
            Err(PartitionError::InvalidImbalance {
                which: "vertex_imbalance",
                ..
            })
        ));
        let p = PartitionParams {
            edge_imbalance: f64::NAN,
            ..Default::default()
        };
        assert!(matches!(
            p.validate(),
            Err(PartitionError::InvalidImbalance {
                which: "edge_imbalance",
                ..
            })
        ));
        let p = PartitionParams {
            mult_y: -1.0,
            ..Default::default()
        };
        assert!(matches!(
            p.validate(),
            Err(PartitionError::InvalidMultiplier {
                which: "mult_y",
                ..
            })
        ));
        assert_eq!(PartitionParams::default().validate(), Ok(()));
    }

    #[test]
    fn with_parts_overrides_only_the_part_count() {
        let p = PartitionParams::with_parts(64);
        assert_eq!(p.num_parts, 64);
        assert_eq!(p.balance_iters, PartitionParams::default().balance_iters);
    }
}
