//! Typed errors for the partitioning request path.
//!
//! Everything reachable from [`Partitioner::try_partition`](crate::Partitioner::try_partition)
//! reports failures through [`PartitionError`] instead of panicking, so a serving layer
//! (see `xtrapulp-api`) can reject a malformed request without tearing down the rank
//! runtime — a panic inside a collective would leave the other ranks deadlocked, exactly
//! like a crashed MPI task hangs the job.

use std::fmt;

/// Why a partitioning request was rejected or a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// `num_parts` must be at least 1.
    InvalidNumParts {
        /// The rejected value.
        got: usize,
    },
    /// An imbalance ratio (`vertex_imbalance` / `edge_imbalance`) was negative or NaN.
    InvalidImbalance {
        /// Which parameter was rejected.
        which: &'static str,
        /// The rejected value, formatted (the error is `Eq`, floats are not).
        got: String,
    },
    /// A multiplier constant (`mult_x` / `mult_y`) was negative or NaN.
    InvalidMultiplier {
        /// Which parameter was rejected.
        which: &'static str,
        /// The rejected value, formatted.
        got: String,
    },
    /// The requested rank count cannot run a collective job.
    InvalidRanks {
        /// The rejected value.
        got: usize,
    },
    /// The distributed gather of per-rank results failed to cover every vertex:
    /// some global ids were never assigned a part by any rank.
    IncompleteGather {
        /// Number of vertices no rank claimed.
        missing: u64,
    },
    /// A rank reported a nonsensical `(vertex, part)` pair during the gather — an
    /// out-of-range vertex id or a negative part label.
    CorruptGather {
        /// The reported global vertex id.
        vertex: u64,
        /// The reported part label.
        part: i32,
    },
    /// A method name did not resolve in the partitioner registry.
    UnknownMethod {
        /// The name that failed to resolve.
        name: String,
        /// Comma-separated list of the names that would have resolved (filled in by the
        /// registry, which is the only constructor of this variant).
        expected: String,
    },
    /// A warm-start part vector was unusable (wrong length, or a part label outside
    /// `-1..num_parts` — `-1` marks vertices to be assigned greedily).
    InvalidWarmStart {
        /// What was wrong with the vector.
        detail: String,
    },
    /// The communication layer failed underneath the job: an invalid rank
    /// configuration, or — on a multi-process transport — a peer process died,
    /// timed out or sent a corrupt frame mid-collective.
    Comm(xtrapulp_comm::CommError),
}

impl From<xtrapulp_comm::CommError> for PartitionError {
    fn from(e: xtrapulp_comm::CommError) -> Self {
        PartitionError::Comm(e)
    }
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::InvalidNumParts { got } => {
                write!(f, "num_parts must be at least 1 (got {got})")
            }
            PartitionError::InvalidImbalance { which, got } => {
                write!(f, "{which} must be a non-negative ratio (got {got})")
            }
            PartitionError::InvalidMultiplier { which, got } => {
                write!(f, "{which} must be a non-negative constant (got {got})")
            }
            PartitionError::InvalidRanks { got } => {
                write!(f, "a partitioning job needs at least 1 rank (got {got})")
            }
            PartitionError::IncompleteGather { missing } => {
                write!(
                    f,
                    "distributed gather left {missing} vertices without a part assignment"
                )
            }
            PartitionError::CorruptGather { vertex, part } => {
                write!(
                    f,
                    "distributed gather produced an invalid assignment (vertex {vertex}, part {part})"
                )
            }
            PartitionError::UnknownMethod { name, expected } => {
                write!(
                    f,
                    "unknown partitioning method '{name}' (expected one of: {expected})"
                )
            }
            PartitionError::InvalidWarmStart { detail } => {
                write!(f, "invalid warm-start part vector: {detail}")
            }
            PartitionError::Comm(e) => write!(f, "communication layer failed: {e}"),
        }
    }
}

impl std::error::Error for PartitionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_offending_value() {
        let e = PartitionError::InvalidNumParts { got: 0 };
        assert!(e.to_string().contains("num_parts"));
        assert!(e.to_string().contains('0'));
        let e = PartitionError::IncompleteGather { missing: 17 };
        assert!(e.to_string().contains("17"));
        let e = PartitionError::UnknownMethod {
            name: "metiss".into(),
            expected: "XtraPuLP, PuLP".into(),
        };
        assert!(e.to_string().contains("metiss"));
        assert!(
            e.to_string().contains("XtraPuLP, PuLP"),
            "message must list the valid names: {e}"
        );
        let e = PartitionError::InvalidWarmStart {
            detail: "wrong length".into(),
        };
        assert!(e.to_string().contains("wrong length"));
    }

    #[test]
    fn errors_are_comparable_for_test_assertions() {
        assert_eq!(
            PartitionError::InvalidNumParts { got: 0 },
            PartitionError::InvalidNumParts { got: 0 }
        );
        assert_ne!(
            PartitionError::InvalidNumParts { got: 0 },
            PartitionError::InvalidRanks { got: 0 }
        );
    }
}
