//! The edge balancing and refinement phases (§III-E of the paper).
//!
//! After the vertex stage, XtraPuLP-MM balances the number of edges per part while
//! keeping the vertex constraint, and minimises both the global cut and the maximum
//! per-part cut. The vertex weighting `Wv` is replaced by an edge weight `We` and a cut
//! weight `Wc`, combined as `counts(i) * (Re*We(i) + Rc*Wc(i))`. The schedule of `Re` and
//! `Rc` first biases towards edge balance (growing `Re` while the edge constraint is
//! unmet) and then towards cut balance (growing `Rc` afterwards).
//!
//! As in the paper, per-iteration part-size changes are tracked in vertices (`Cv`), arcs
//! (`Ce`) and cut arcs (`Cc`), throttled by the same dynamic multiplier, and exchanged
//! with an allreduce at the end of every iteration.
//!
//! Implementation note: the paper does not give the exact functional form of `We`, `Wc`,
//! `Re` and `Rc`; we use the same reciprocal-headroom form as `Wv` and a simple
//! monotone schedule (documented in DESIGN.md), which reproduces the qualitative
//! behaviour: the edge-balance constraint is met first, then the max per-part cut is
//! reduced and evened out.

use xtrapulp_comm::RankCtx;
use xtrapulp_graph::{DistGraph, LocalId};

use crate::balance::{
    global_arc_counts, global_cut_counts, global_vertex_counts, ScoreScratch, StageCounter,
};
use crate::exchange::{push_part_updates, PartUpdate};
use crate::params::PartitionParams;

/// One pass of the edge balancing phase: `params.balance_iters` iterations of weighted
/// label propagation driven by edge- and cut-balance weights.
pub fn edge_balance(
    ctx: &RankCtx,
    graph: &DistGraph,
    parts: &mut [i32],
    params: &PartitionParams,
    counter: &mut StageCounter,
) {
    let p = params.num_parts;
    let nranks = ctx.nranks();
    let imb_v = params.target_max_vertices(graph.global_n());
    let imb_e = params.target_max_arcs(2 * graph.global_m());

    let mut size_v = global_vertex_counts(ctx, graph, parts, p);
    let mut size_e = global_arc_counts(ctx, graph, parts, p);
    let mut size_c = global_cut_counts(ctx, graph, parts, p);

    // Bias schedule: emphasise edge balance until the constraint is met, then shift the
    // emphasis to the cut-balance objective.
    let mut r_e = 1.0f64;
    let mut r_c = 1.0f64;

    let mut scratch = ScoreScratch::new(p);
    for _ in 0..params.balance_iters {
        let max_v = size_v.iter().map(|&s| s as f64).fold(imb_v, f64::max);
        let max_e = size_e.iter().map(|&s| s as f64).fold(imb_e, f64::max);
        let max_c = size_c.iter().map(|&s| s as f64).fold(1.0, f64::max);
        let edge_balanced = size_e.iter().all(|&s| (s as f64) <= imb_e);
        if edge_balanced {
            r_c += 1.0;
        } else {
            r_e += 1.0;
        }
        let mult = params.multiplier(nranks, counter.iter_tot);

        let mut change_v = vec![0i64; p];
        let mut change_e = vec![0i64; p];
        let mut change_c = vec![0i64; p];
        let weight_e = |size: i64, change: i64| -> f64 {
            let denom = (size as f64 + mult * change as f64).max(1.0);
            (imb_e / denom - 1.0).max(0.0)
        };
        let weight_c = |size: i64, change: i64| -> f64 {
            let denom = (size as f64 + mult * change as f64).max(1.0);
            (max_c / denom - 1.0).max(0.0)
        };
        let mut w_e: Vec<f64> = (0..p).map(|i| weight_e(size_e[i], 0)).collect();
        let mut w_c: Vec<f64> = (0..p).map(|i| weight_c(size_c[i], 0)).collect();

        let mut updates: Vec<PartUpdate> = Vec::new();
        for v in 0..graph.n_owned() {
            let x = parts[v] as usize;
            let deg = graph.degree_owned(v as LocalId) as f64;
            scratch.clear();
            for &u in graph.neighbors(v as LocalId) {
                scratch.add(parts[u as usize] as usize, 1.0);
            }
            let mut best_part = x;
            let mut best_score = 0.0f64;
            for &i in scratch.touched() {
                if i == x {
                    continue;
                }
                // Constraints: respect the vertex target and never exceed the current
                // maximum edge load.
                if size_v[i] as f64 + mult * change_v[i] as f64 + 1.0 > max_v {
                    continue;
                }
                if size_e[i] as f64 + mult * change_e[i] as f64 + deg > max_e {
                    continue;
                }
                let score = scratch.get(i) * (r_e * w_e[i] + r_c * w_c[i]);
                if score > best_score {
                    best_score = score;
                    best_part = i;
                }
            }
            if best_part != x && best_score > 0.0 {
                let w = best_part;
                // Cut arcs contributed by v before and after the move.
                let cut_from_x = graph
                    .neighbors(v as LocalId)
                    .iter()
                    .filter(|&&u| parts[u as usize] as usize != x)
                    .count() as i64;
                let cut_from_w = graph
                    .neighbors(v as LocalId)
                    .iter()
                    .filter(|&&u| parts[u as usize] as usize != w)
                    .count() as i64;
                change_v[x] -= 1;
                change_v[w] += 1;
                change_e[x] -= deg as i64;
                change_e[w] += deg as i64;
                change_c[x] -= cut_from_x;
                change_c[w] += cut_from_w;
                w_e[x] = weight_e(size_e[x], change_e[x]);
                w_e[w] = weight_e(size_e[w], change_e[w]);
                w_c[x] = weight_c(size_c[x], change_c[x]);
                w_c[w] = weight_c(size_c[w], change_c[w]);
                parts[v] = w as i32;
                updates.push((v as LocalId, w as i32));
            }
        }

        push_part_updates(ctx, graph, &updates, parts);
        let mut all_changes = Vec::with_capacity(3 * p);
        all_changes.extend_from_slice(&change_v);
        all_changes.extend_from_slice(&change_e);
        all_changes.extend_from_slice(&change_c);
        let global = ctx.allreduce_sum_i64(&all_changes);
        for i in 0..p {
            size_v[i] += global[i];
            size_e[i] += global[p + i];
            size_c[i] += global[2 * p + i];
            size_c[i] = size_c[i].max(0);
        }
        counter.iter_tot += 1;
    }
}

/// One pass of the edge-stage refinement: constrained label propagation that reduces the
/// cut while never increasing the maximum vertex, edge or cut load of any part.
pub fn edge_refine(
    ctx: &RankCtx,
    graph: &DistGraph,
    parts: &mut [i32],
    params: &PartitionParams,
    counter: &mut StageCounter,
) {
    let p = params.num_parts;
    let nranks = ctx.nranks();
    let imb_v = params.target_max_vertices(graph.global_n());
    let imb_e = params.target_max_arcs(2 * graph.global_m());

    let mut size_v = global_vertex_counts(ctx, graph, parts, p);
    let mut size_e = global_arc_counts(ctx, graph, parts, p);
    let mut size_c = global_cut_counts(ctx, graph, parts, p);

    let mut scratch = ScoreScratch::new(p);
    for _ in 0..params.refine_iters {
        let max_v = size_v.iter().map(|&s| s as f64).fold(imb_v, f64::max);
        let max_e = size_e.iter().map(|&s| s as f64).fold(imb_e, f64::max);
        let max_c = size_c.iter().map(|&s| s as f64).fold(1.0, f64::max);
        let mult = params.multiplier(nranks, counter.iter_tot);
        // As in vertex refinement, admissibility is guarded with the full rank count so
        // the per-part maxima cannot be exceeded by concurrent ranks within one stale
        // iteration.
        let guard_mult = mult.max(nranks as f64);

        let mut change_v = vec![0i64; p];
        let mut change_e = vec![0i64; p];
        let mut change_c = vec![0i64; p];

        let mut updates: Vec<PartUpdate> = Vec::new();
        for v in 0..graph.n_owned() {
            let x = parts[v] as usize;
            let deg = graph.degree_owned(v as LocalId) as f64;
            scratch.clear();
            for &u in graph.neighbors(v as LocalId) {
                scratch.add(parts[u as usize] as usize, 1.0);
            }
            let own_score = scratch.get(x);
            let mut best_part = x;
            let mut best_score = own_score;
            for &i in scratch.touched() {
                if i == x {
                    continue;
                }
                let cut_into_i = graph.degree_owned(v as LocalId) as f64 - scratch.get(i);
                if size_v[i] as f64 + guard_mult * change_v[i] as f64 + 1.0 > max_v {
                    continue;
                }
                if size_e[i] as f64 + guard_mult * change_e[i] as f64 + deg > max_e {
                    continue;
                }
                if size_c[i] as f64 + guard_mult * change_c[i] as f64 + cut_into_i > max_c {
                    continue;
                }
                let score = scratch.get(i);
                if score > best_score {
                    best_score = score;
                    best_part = i;
                }
            }
            if best_part != x {
                let w = best_part;
                let cut_from_x = deg as i64 - scratch.get(x) as i64;
                let cut_from_w = deg as i64 - scratch.get(w) as i64;
                change_v[x] -= 1;
                change_v[w] += 1;
                change_e[x] -= deg as i64;
                change_e[w] += deg as i64;
                change_c[x] -= cut_from_x;
                change_c[w] += cut_from_w;
                parts[v] = w as i32;
                updates.push((v as LocalId, w as i32));
            }
        }

        push_part_updates(ctx, graph, &updates, parts);
        let mut all_changes = Vec::with_capacity(3 * p);
        all_changes.extend_from_slice(&change_v);
        all_changes.extend_from_slice(&change_e);
        all_changes.extend_from_slice(&change_c);
        let global = ctx.allreduce_sum_i64(&all_changes);
        for i in 0..p {
            size_v[i] += global[i];
            size_e[i] += global[p + i];
            size_c[i] += global[2 * p + i];
            size_c[i] = size_c[i].max(0);
        }
        counter.iter_tot += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{vertex_balance, vertex_refine};
    use crate::init::init_partition;
    use crate::metrics::{is_valid_partition, PartitionQuality};
    use xtrapulp_comm::Runtime;
    use xtrapulp_graph::Distribution;

    /// A skewed graph: a hub star glued to a grid, so vertex balance and edge balance
    /// pull in different directions.
    fn skewed_edges() -> (u64, Vec<(u64, u64)>) {
        let mut edges = Vec::new();
        // Star: vertex 0 connected to 1..=40.
        for i in 1..=40u64 {
            edges.push((0, i));
        }
        // Grid of 10x10 on vertices 41..141.
        let base = 41u64;
        for y in 0..10u64 {
            for x in 0..10u64 {
                let id = base + y * 10 + x;
                if x + 1 < 10 {
                    edges.push((id, id + 1));
                }
                if y + 1 < 10 {
                    edges.push((id, id + 10));
                }
            }
        }
        // Glue the star to the grid.
        edges.push((1, base));
        (141, edges)
    }

    #[test]
    fn edge_stage_improves_edge_balance_without_breaking_vertex_constraint() {
        let (n, edges) = skewed_edges();
        let out = Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, n, &edges);
            let params = PartitionParams {
                num_parts: 4,
                seed: 11,
                ..Default::default()
            };
            let mut parts = init_partition(ctx, &g, &params);
            let mut counter = StageCounter::default();
            for _ in 0..params.outer_iters {
                vertex_balance(ctx, &g, &mut parts, &params, &mut counter);
                vertex_refine(ctx, &g, &mut parts, &params, &mut counter);
            }
            let before = PartitionQuality::evaluate_dist(ctx, &g, &parts, 4);
            let mut counter = StageCounter::default();
            for _ in 0..params.outer_iters {
                edge_balance(ctx, &g, &mut parts, &params, &mut counter);
                edge_refine(ctx, &g, &mut parts, &params, &mut counter);
            }
            let after = PartitionQuality::evaluate_dist(ctx, &g, &parts, 4);
            assert!(is_valid_partition(&parts, 4));
            (before, after)
        });
        let (before, after) = out[0];
        // The edge stage should not blow up the vertex balance, and should improve (or at
        // least not substantially worsen) the edge balance.
        assert!(
            after.vertex_imbalance < 1.6,
            "vertex imbalance {}",
            after.vertex_imbalance
        );
        assert!(
            after.edge_imbalance <= before.edge_imbalance * 1.25 + 0.1,
            "edge imbalance regressed: {} -> {}",
            before.edge_imbalance,
            after.edge_imbalance
        );
    }

    #[test]
    fn edge_refine_does_not_increase_cut_substantially() {
        let (n, edges) = skewed_edges();
        Runtime::run(3, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Cyclic, n, &edges);
            let params = PartitionParams {
                num_parts: 3,
                seed: 5,
                ..Default::default()
            };
            let mut parts = init_partition(ctx, &g, &params);
            let mut counter = StageCounter::default();
            vertex_balance(ctx, &g, &mut parts, &params, &mut counter);
            vertex_refine(ctx, &g, &mut parts, &params, &mut counter);
            let before = PartitionQuality::evaluate_dist(ctx, &g, &parts, 3);
            let mut counter = StageCounter::default();
            edge_refine(ctx, &g, &mut parts, &params, &mut counter);
            let after = PartitionQuality::evaluate_dist(ctx, &g, &parts, 3);
            assert!(
                after.edge_cut <= before.edge_cut + before.edge_cut / 4 + 2,
                "edge refine increased cut too much: {} -> {}",
                before.edge_cut,
                after.edge_cut
            );
        });
    }

    #[test]
    fn stage_counters_advance() {
        let (n, edges) = skewed_edges();
        Runtime::run(1, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, n, &edges);
            let params = PartitionParams::with_parts(2);
            let mut parts = init_partition(ctx, &g, &params);
            let mut counter = StageCounter::default();
            edge_balance(ctx, &g, &mut parts, &params, &mut counter);
            edge_refine(ctx, &g, &mut parts, &params, &mut counter);
            assert_eq!(counter.iter_tot, params.balance_iters + params.refine_iters);
        });
    }
}
