//! The edge balancing and refinement phases (§III-E of the paper).
//!
//! After the vertex stage, XtraPuLP-MM balances the number of edges per part while
//! keeping the vertex constraint, and minimises both the global cut and the maximum
//! per-part cut. The vertex weighting `Wv` is replaced by an edge weight `We` and a cut
//! weight `Wc`, combined as `counts(i) * (Re*We(i) + Rc*Wc(i))`. The schedule of `Re` and
//! `Rc` first biases towards edge balance (growing `Re` while the edge constraint is
//! unmet) and then towards cut balance (growing `Rc` afterwards).
//!
//! As in the paper, per-iteration part-size changes are tracked in vertices (`Cv`), arcs
//! (`Ce`) and cut arcs (`Cc`), throttled by the same dynamic multiplier, and exchanged
//! with an allreduce at the end of every iteration.
//!
//! Implementation note: the paper does not give the exact functional form of `We`, `Wc`,
//! `Re` and `Rc`; we use the same reciprocal-headroom form as `Wv` and a simple
//! monotone schedule (documented in DESIGN.md), which reproduces the qualitative
//! behaviour: the edge-balance constraint is met first, then the max per-part cut is
//! reduced and evened out.
//!
//! Both phases run on the shared sweep engine (see [`crate::sweep`] and the structurally
//! identical vertex stage in [`crate::balance`]): frontier-driven refinement, two-phase
//! deterministic chunk application, and the fixed-point perturbation policy for the
//! balance pass.

use xtrapulp_comm::RankCtx;
use xtrapulp_graph::{DistGraph, LocalId};

use crate::balance::{
    dist_neighbors, global_arc_counts, global_cut_counts, global_vertex_counts, StageCounter,
};
use crate::exchange::{push_part_updates_marking, GhostNeighborMap, PartUpdate};
use crate::params::PartitionParams;
use crate::sweep::{
    refine_budget, RefineConvergence, ScoreScratch, StageKind, SweepMode, SweepStage,
    SweepWorkspace, BALANCE_CHUNK, NO_MOVE, SWEEP_CHUNK,
};

/// Count `v`'s neighbours in part `x` and in `target` under the current labels.
#[inline]
fn recount_two(graph: &DistGraph, v: u32, parts: &[i32], x: usize, target: usize) -> (f64, f64) {
    let mut s_x = 0.0f64;
    let mut s_t = 0.0f64;
    for &u in graph.neighbors(v as LocalId) {
        let pu = parts[u as usize] as usize;
        if pu == x {
            s_x += 1.0;
        } else if pu == target {
            s_t += 1.0;
        }
    }
    (s_x, s_t)
}

/// Shared mutable state of one edge-stage sweep: the three global size arrays, their
/// local per-iteration changes and the two weight tables.
struct EdgeStageState<'a> {
    size_v: &'a [i64],
    size_e: &'a [i64],
    size_c: &'a [i64],
    change_v: &'a mut [i64],
    change_e: &'a mut [i64],
    change_c: &'a mut [i64],
    w_e: &'a mut [f64],
    w_c: &'a mut [f64],
}

impl EdgeStageState<'_> {
    #[inline]
    fn est_v(&self, i: usize, mult: f64) -> f64 {
        self.size_v[i] as f64 + mult * self.change_v[i] as f64
    }

    #[inline]
    fn est_e(&self, i: usize, mult: f64) -> f64 {
        self.size_e[i] as f64 + mult * self.change_e[i] as f64
    }

    #[inline]
    fn est_c(&self, i: usize, mult: f64) -> f64 {
        self.size_c[i] as f64 + mult * self.change_c[i] as f64
    }
}

/// One distributed edge-balancing sweep: weighted label propagation driven by edge- and
/// cut-balance weights.
struct DistEdgeBalance<'a> {
    graph: &'a DistGraph,
    state: EdgeStageState<'a>,
    imb_e: f64,
    max_v: f64,
    max_e: f64,
    max_c: f64,
    mult: f64,
    r_e: f64,
    r_c: f64,
}

impl DistEdgeBalance<'_> {
    #[inline]
    fn weight_e_of(&self, i: usize) -> f64 {
        let denom = self.state.est_e(i, self.mult).max(1.0);
        (self.imb_e / denom - 1.0).max(0.0)
    }

    #[inline]
    fn weight_c_of(&self, i: usize) -> f64 {
        let denom = self.state.est_c(i, self.mult).max(1.0);
        (self.max_c / denom - 1.0).max(0.0)
    }

    /// Commit the counter updates of a move of `v` (degree `deg`) from `x` to `w`.
    fn commit(&mut self, x: usize, w: usize, deg: f64, cut_from_x: i64, cut_from_w: i64) {
        self.state.change_v[x] -= 1;
        self.state.change_v[w] += 1;
        self.state.change_e[x] -= deg as i64;
        self.state.change_e[w] += deg as i64;
        self.state.change_c[x] -= cut_from_x;
        self.state.change_c[w] += cut_from_w;
        self.state.w_e[x] = self.weight_e_of(x);
        self.state.w_e[w] = self.weight_e_of(w);
        self.state.w_c[x] = self.weight_c_of(x);
        self.state.w_c[w] = self.weight_c_of(w);
    }
}

impl SweepStage for DistEdgeBalance<'_> {
    fn propose(&self, v: u32, parts: &[i32], scratch: &mut ScoreScratch) -> i32 {
        let x = parts[v as usize] as usize;
        let deg = self.graph.degree_owned(v as LocalId) as f64;
        scratch.clear();
        for &u in self.graph.neighbors(v as LocalId) {
            scratch.add(parts[u as usize] as usize, 1.0);
        }
        let mut best_part = x;
        let mut best_score = 0.0f64;
        for &i in scratch.touched() {
            if i == x {
                continue;
            }
            // Constraints: respect the vertex target and never exceed the current
            // maximum edge load.
            if self.state.est_v(i, self.mult) + 1.0 > self.max_v {
                continue;
            }
            if self.state.est_e(i, self.mult) + deg > self.max_e {
                continue;
            }
            let score =
                scratch.get(i) * (self.r_e * self.state.w_e[i] + self.r_c * self.state.w_c[i]);
            if score > best_score {
                best_score = score;
                best_part = i;
            }
        }
        if best_part != x && best_score > 0.0 {
            best_part as i32
        } else {
            NO_MOVE
        }
    }

    fn apply(&mut self, v: u32, target: usize, parts: &[i32]) -> bool {
        let x = parts[v as usize] as usize;
        let deg = self.graph.degree_owned(v as LocalId) as f64;
        if self.state.est_v(target, self.mult) + 1.0 > self.max_v
            || self.state.est_e(target, self.mult) + deg > self.max_e
            || self.r_e * self.state.w_e[target] + self.r_c * self.state.w_c[target] <= 0.0
        {
            return false;
        }
        let (s_x, s_t) = recount_two(self.graph, v, parts, x, target);
        if s_t <= 0.0 {
            return false;
        }
        let cut_from_x = deg as i64 - s_x as i64;
        let cut_from_t = deg as i64 - s_t as i64;
        self.commit(x, target, deg, cut_from_x, cut_from_t);
        true
    }
}

/// One pass of the edge balancing phase: weighted label-propagation iterations driven
/// by edge- and cut-balance weights, under the fixed-point perturbation policy in
/// frontier mode. Must be called collectively.
#[allow(clippy::too_many_arguments)]
pub fn edge_balance(
    ctx: &RankCtx,
    graph: &DistGraph,
    parts: &mut [i32],
    params: &PartitionParams,
    counter: &mut StageCounter,
    ws: &mut SweepWorkspace,
    ghosts: &GhostNeighborMap,
) {
    let p = params.num_parts;
    let nranks = ctx.nranks();
    let n_owned = graph.n_owned();
    let frontier_mode = params.sweep_mode == SweepMode::Frontier;
    let imb_v = params.target_max_vertices(graph.global_n());
    let imb_e = params.target_max_arcs(2 * graph.global_m());

    let mut size_v = global_vertex_counts(ctx, graph, parts, p);
    let mut size_e = global_arc_counts(ctx, graph, parts, p);
    let mut size_c = global_cut_counts(ctx, graph, parts, p);

    // Fixed-point perturbation policy against the edge target, mirroring the vertex
    // stage, plus stall detection: when the target is unreachable (hub-dominated
    // skew), pass after pass of balance churn costs full sweeps without improving the
    // maximum arc load — detect the lack of progress and stop paying for it. All
    // decisions are on global numbers, so every rank takes the same branch.
    let cur_max_e = size_e.iter().map(|&s| s as f64).fold(0.0, f64::max);
    let edge_balanced = size_e.iter().all(|&s| (s as f64) <= imb_e);
    if frontier_mode && !edge_balanced {
        if let Some(prev) = ws.edge_balance_last_max {
            if cur_max_e >= prev * 0.99 {
                ws.edge_balance_stalled = true;
            }
        }
        ws.edge_balance_last_max = Some(cur_max_e);
    }
    let sweep_cap = if frontier_mode && ws.edge_balance_stalled {
        // The target is out of reach; keep a single churn sweep per pass — its
        // perturbation still feeds the refinement rounds — but stop paying for the
        // remaining schedule.
        1
    } else if frontier_mode && edge_balanced {
        let global_active = ctx.allreduce_scalar_sum_u64(ws.engine.frontier.active_len() as u64);
        if global_active > 0 {
            0
        } else {
            1
        }
    } else {
        params.balance_iters
    };

    // Bias schedule: emphasise edge balance until the constraint is met, then shift the
    // emphasis to the cut-balance objective.
    let mut r_e = 1.0f64;
    let mut r_c = 1.0f64;

    // Balanced or stalled-at-unreachable passes only perturb; book them as churn (all
    // inputs are global numbers, so every rank books identically).
    let churn = edge_balanced || ws.edge_balance_stalled;
    let SweepWorkspace {
        engine, counters, ..
    } = ws;
    engine.set_stage(if churn {
        StageKind::Churn
    } else {
        StageKind::Balance
    });
    let mut updates: Vec<PartUpdate> = Vec::new();
    for _ in 0..sweep_cap {
        let max_v = size_v.iter().map(|&s| s as f64).fold(imb_v, f64::max);
        let max_e = size_e.iter().map(|&s| s as f64).fold(imb_e, f64::max);
        let max_c = size_c.iter().map(|&s| s as f64).fold(1.0, f64::max);
        let edge_balanced = size_e.iter().all(|&s| (s as f64) <= imb_e);
        if edge_balanced {
            r_c += 1.0;
        } else {
            r_e += 1.0;
        }
        // A capped churn sweep has no follow-up sweeps to correct collective
        // overshoot, so it charges changes at the conservative end-of-schedule rate.
        let mult = if sweep_cap == 1 {
            params
                .multiplier(nranks, counter.iter_tot)
                .max(nranks as f64)
        } else {
            params.multiplier(nranks, counter.iter_tot)
        };

        counters.reset_changes();
        for i in 0..p {
            counters.weight_a[i] = {
                let denom = (size_e[i] as f64).max(1.0);
                (imb_e / denom - 1.0).max(0.0)
            };
            counters.weight_b[i] = {
                let denom = (size_c[i] as f64).max(1.0);
                (max_c / denom - 1.0).max(0.0)
            };
        }
        let mut stage = DistEdgeBalance {
            graph,
            state: EdgeStageState {
                size_v: &size_v,
                size_e: &size_e,
                size_c: &size_c,
                change_v: &mut counters.change_v,
                change_e: &mut counters.change_e,
                change_c: &mut counters.change_c,
                w_e: &mut counters.weight_a,
                w_c: &mut counters.weight_b,
            },
            imb_e,
            max_v,
            max_e,
            max_c,
            mult,
            r_e,
            r_c,
        };
        updates.clear();
        engine.sweep(
            n_owned,
            parts,
            false,
            BALANCE_CHUNK,
            &mut stage,
            dist_neighbors(graph),
            |v, part| updates.push((v, part)),
        );

        push_part_updates_marking(ctx, graph, &updates, parts, ghosts, &mut engine.frontier);
        let mut all = Vec::with_capacity(3 * p + 1);
        all.extend_from_slice(&counters.change_v);
        all.extend_from_slice(&counters.change_e);
        all.extend_from_slice(&counters.change_c);
        all.push(updates.len() as i64);
        let global = ctx.allreduce_sum_i64(&all);
        for i in 0..p {
            size_v[i] += global[i];
            size_e[i] += global[p + i];
            size_c[i] += global[2 * p + i];
            size_c[i] = size_c[i].max(0);
        }
        counter.iter_tot += 1;
        if frontier_mode && global[3 * p] == 0 {
            break;
        }
    }
}

/// One distributed edge-stage refinement sweep: constrained label propagation that
/// reduces the cut while never increasing the maximum vertex, edge or cut load of any
/// part.
struct DistEdgeRefine<'a> {
    graph: &'a DistGraph,
    state: EdgeStageState<'a>,
    max_v: f64,
    max_e: f64,
    max_c: f64,
    guard_mult: f64,
}

impl SweepStage for DistEdgeRefine<'_> {
    fn propose(&self, v: u32, parts: &[i32], scratch: &mut ScoreScratch) -> i32 {
        let x = parts[v as usize] as usize;
        let deg = self.graph.degree_owned(v as LocalId) as f64;
        scratch.clear();
        for &u in self.graph.neighbors(v as LocalId) {
            scratch.add(parts[u as usize] as usize, 1.0);
        }
        let own_score = scratch.get(x);
        let mut best_part = x;
        let mut best_score = own_score;
        for &i in scratch.touched() {
            if i == x {
                continue;
            }
            let cut_into_i = deg - scratch.get(i);
            if self.state.est_v(i, self.guard_mult) + 1.0 > self.max_v {
                continue;
            }
            if self.state.est_e(i, self.guard_mult) + deg > self.max_e {
                continue;
            }
            if self.state.est_c(i, self.guard_mult) + cut_into_i > self.max_c {
                continue;
            }
            let score = scratch.get(i);
            if score > best_score {
                best_score = score;
                best_part = i;
            }
        }
        if best_part != x {
            best_part as i32
        } else {
            NO_MOVE
        }
    }

    fn apply(&mut self, v: u32, target: usize, parts: &[i32]) -> bool {
        let x = parts[v as usize] as usize;
        let deg = self.graph.degree_owned(v as LocalId) as f64;
        let (s_x, s_t) = recount_two(self.graph, v, parts, x, target);
        if s_t <= s_x
            || self.state.est_v(target, self.guard_mult) + 1.0 > self.max_v
            || self.state.est_e(target, self.guard_mult) + deg > self.max_e
            || self.state.est_c(target, self.guard_mult) + (deg - s_t) > self.max_c
        {
            return false;
        }
        let cut_from_x = deg as i64 - s_x as i64;
        let cut_from_t = deg as i64 - s_t as i64;
        self.state.change_v[x] -= 1;
        self.state.change_v[target] += 1;
        self.state.change_e[x] -= deg as i64;
        self.state.change_e[target] += deg as i64;
        self.state.change_c[x] -= cut_from_x;
        self.state.change_c[target] += cut_from_t;
        true
    }
}

/// One pass of the edge-stage refinement: constrained label propagation that reduces the
/// cut while never increasing the maximum vertex, edge or cut load of any part.
/// Frontier-driven with the [`RefineConvergence`] protocol; must be called collectively.
#[allow(clippy::too_many_arguments)]
pub fn edge_refine(
    ctx: &RankCtx,
    graph: &DistGraph,
    parts: &mut [i32],
    params: &PartitionParams,
    counter: &mut StageCounter,
    ws: &mut SweepWorkspace,
    ghosts: &GhostNeighborMap,
    convergence: RefineConvergence,
) {
    let p = params.num_parts;
    let nranks = ctx.nranks();
    let n_owned = graph.n_owned();
    let frontier_mode = params.sweep_mode == SweepMode::Frontier;
    let imb_v = params.target_max_vertices(graph.global_n());
    let imb_e = params.target_max_arcs(2 * graph.global_m());
    // A globally-converged frontier-only pass does no work at all — skip the counter
    // collectives (each an O(n) or O(m) local scan) too. Global check: every rank
    // returns or proceeds together.
    if frontier_mode && convergence == RefineConvergence::FrontierOnly {
        let global_active = ctx.allreduce_scalar_sum_u64(ws.engine.frontier.active_len() as u64);
        if global_active == 0 {
            return;
        }
    }

    let mut size_v = global_vertex_counts(ctx, graph, parts, p);
    let mut size_e = global_arc_counts(ctx, graph, parts, p);
    let mut size_c = global_cut_counts(ctx, graph, parts, p);

    let SweepWorkspace {
        engine, counters, ..
    } = ws;
    engine.set_stage(StageKind::Refine);
    if frontier_mode && convergence == RefineConvergence::Polish {
        let global_active = ctx.allreduce_scalar_sum_u64(engine.frontier.active_len() as u64);
        if global_active > graph.global_n() / 8 {
            engine.frontier.clear();
        }
    }

    let budget = refine_budget(params.refine_iters, params.sweep_mode);
    let mut updates: Vec<PartUpdate> = Vec::new();
    for _ in 0..budget {
        let use_frontier = if frontier_mode {
            let global_active = ctx.allreduce_scalar_sum_u64(engine.frontier.active_len() as u64);
            if global_active == 0 && convergence == RefineConvergence::FrontierOnly {
                break;
            }
            global_active > 0
        } else {
            false
        };

        let max_v = size_v.iter().map(|&s| s as f64).fold(imb_v, f64::max);
        let max_e = size_e.iter().map(|&s| s as f64).fold(imb_e, f64::max);
        let max_c = size_c.iter().map(|&s| s as f64).fold(1.0, f64::max);
        let mult = params.multiplier(nranks, counter.iter_tot);
        // As in vertex refinement, admissibility is guarded with the full rank count so
        // the per-part maxima cannot be exceeded by concurrent ranks within one stale
        // iteration.
        let guard_mult = mult.max(nranks as f64);

        counters.reset_changes();
        let mut stage = DistEdgeRefine {
            graph,
            state: EdgeStageState {
                size_v: &size_v,
                size_e: &size_e,
                size_c: &size_c,
                change_v: &mut counters.change_v,
                change_e: &mut counters.change_e,
                change_c: &mut counters.change_c,
                w_e: &mut counters.weight_a,
                w_c: &mut counters.weight_b,
            },
            max_v,
            max_e,
            max_c,
            guard_mult,
        };
        updates.clear();
        engine.sweep(
            n_owned,
            parts,
            use_frontier,
            SWEEP_CHUNK,
            &mut stage,
            dist_neighbors(graph),
            |v, part| updates.push((v, part)),
        );

        push_part_updates_marking(ctx, graph, &updates, parts, ghosts, &mut engine.frontier);
        let mut all = Vec::with_capacity(3 * p + 1);
        all.extend_from_slice(&counters.change_v);
        all.extend_from_slice(&counters.change_e);
        all.extend_from_slice(&counters.change_c);
        all.push(updates.len() as i64);
        let global = ctx.allreduce_sum_i64(&all);
        for i in 0..p {
            size_v[i] += global[i];
            size_e[i] += global[p + i];
            size_c[i] += global[2 * p + i];
            size_c[i] = size_c[i].max(0);
        }
        counter.iter_tot += 1;
        if frontier_mode
            && global[3 * p] == 0
            && (!use_frontier || convergence == RefineConvergence::FrontierOnly)
        {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{vertex_balance, vertex_refine};
    use crate::init::init_partition;
    use crate::metrics::{is_valid_partition, PartitionQuality};
    use xtrapulp_comm::Runtime;
    use xtrapulp_graph::Distribution;

    /// A skewed graph: a hub star glued to a grid, so vertex balance and edge balance
    /// pull in different directions.
    fn skewed_edges() -> (u64, Vec<(u64, u64)>) {
        let mut edges = Vec::new();
        // Star: vertex 0 connected to 1..=40.
        for i in 1..=40u64 {
            edges.push((0, i));
        }
        // Grid of 10x10 on vertices 41..141.
        let base = 41u64;
        for y in 0..10u64 {
            for x in 0..10u64 {
                let id = base + y * 10 + x;
                if x + 1 < 10 {
                    edges.push((id, id + 1));
                }
                if y + 1 < 10 {
                    edges.push((id, id + 10));
                }
            }
        }
        // Glue the star to the grid.
        edges.push((1, base));
        (141, edges)
    }

    fn stage_env(
        graph: &DistGraph,
        params: &PartitionParams,
    ) -> (SweepWorkspace, GhostNeighborMap) {
        let mut ws = SweepWorkspace::new(params.sweep_threads);
        ws.begin_run(graph.n_owned(), params.num_parts);
        ws.engine.frontier.seed_all(graph.n_owned());
        (ws, GhostNeighborMap::build(graph))
    }

    #[test]
    fn edge_stage_improves_edge_balance_without_breaking_vertex_constraint() {
        let (n, edges) = skewed_edges();
        let out = Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, n, &edges);
            let params = PartitionParams {
                num_parts: 4,
                seed: 11,
                ..Default::default()
            };
            let mut parts = init_partition(ctx, &g, &params);
            let (mut ws, ghosts) = stage_env(&g, &params);
            let mut counter = StageCounter::default();
            for _ in 0..params.outer_iters {
                vertex_balance(ctx, &g, &mut parts, &params, &mut counter, &mut ws, &ghosts);
                vertex_refine(
                    ctx,
                    &g,
                    &mut parts,
                    &params,
                    &mut counter,
                    &mut ws,
                    &ghosts,
                    RefineConvergence::Polish,
                );
            }
            let before = PartitionQuality::evaluate_dist(ctx, &g, &parts, 4);
            let mut counter = StageCounter::default();
            for _ in 0..params.outer_iters {
                edge_balance(ctx, &g, &mut parts, &params, &mut counter, &mut ws, &ghosts);
                edge_refine(
                    ctx,
                    &g,
                    &mut parts,
                    &params,
                    &mut counter,
                    &mut ws,
                    &ghosts,
                    RefineConvergence::Polish,
                );
            }
            let after = PartitionQuality::evaluate_dist(ctx, &g, &parts, 4);
            assert!(is_valid_partition(&parts, 4));
            (before, after)
        });
        let (before, after) = out[0];
        // The edge stage should not blow up the vertex balance, and should improve (or at
        // least not substantially worsen) the edge balance.
        assert!(
            after.vertex_imbalance < 1.6,
            "vertex imbalance {}",
            after.vertex_imbalance
        );
        assert!(
            after.edge_imbalance <= before.edge_imbalance * 1.25 + 0.1,
            "edge imbalance regressed: {} -> {}",
            before.edge_imbalance,
            after.edge_imbalance
        );
    }

    #[test]
    fn edge_refine_does_not_increase_cut_substantially() {
        let (n, edges) = skewed_edges();
        Runtime::run(3, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Cyclic, n, &edges);
            let params = PartitionParams {
                num_parts: 3,
                seed: 5,
                ..Default::default()
            };
            let mut parts = init_partition(ctx, &g, &params);
            let (mut ws, ghosts) = stage_env(&g, &params);
            let mut counter = StageCounter::default();
            vertex_balance(ctx, &g, &mut parts, &params, &mut counter, &mut ws, &ghosts);
            vertex_refine(
                ctx,
                &g,
                &mut parts,
                &params,
                &mut counter,
                &mut ws,
                &ghosts,
                RefineConvergence::Polish,
            );
            let before = PartitionQuality::evaluate_dist(ctx, &g, &parts, 3);
            let mut counter = StageCounter::default();
            edge_refine(
                ctx,
                &g,
                &mut parts,
                &params,
                &mut counter,
                &mut ws,
                &ghosts,
                RefineConvergence::Polish,
            );
            let after = PartitionQuality::evaluate_dist(ctx, &g, &parts, 3);
            assert!(
                after.edge_cut <= before.edge_cut + before.edge_cut / 4 + 2,
                "edge refine increased cut too much: {} -> {}",
                before.edge_cut,
                after.edge_cut
            );
        });
    }

    #[test]
    fn full_mode_stage_counters_advance() {
        let (n, edges) = skewed_edges();
        Runtime::run(1, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, n, &edges);
            let params = PartitionParams {
                sweep_mode: SweepMode::Full,
                ..PartitionParams::with_parts(2)
            };
            let mut parts = init_partition(ctx, &g, &params);
            let (mut ws, ghosts) = stage_env(&g, &params);
            let mut counter = StageCounter::default();
            edge_balance(ctx, &g, &mut parts, &params, &mut counter, &mut ws, &ghosts);
            edge_refine(
                ctx,
                &g,
                &mut parts,
                &params,
                &mut counter,
                &mut ws,
                &ghosts,
                RefineConvergence::Polish,
            );
            assert_eq!(counter.iter_tot, params.balance_iters + params.refine_iters);
        });
    }
}
