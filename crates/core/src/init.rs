//! Partition initialisation strategies (Algorithm 2 of the paper).
//!
//! XtraPuLP's initialisation is a hybrid of unconstrained label propagation and
//! BFS-based graph growing: rank 0 selects `p` unique random root vertices and
//! broadcasts them; each root seeds one part; in each bulk-synchronous round every
//! unassigned vertex that sees at least one assigned neighbour adopts a *random*
//! neighbouring part (randomising, rather than taking the majority label, gives more
//! balanced initial parts). Vertices still unassigned when growth stalls (disconnected
//! components) are assigned randomly. The paper credits this initialisation with a
//! substantial quality improvement on some graphs (e.g. wdc12-pay).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use xtrapulp_comm::RankCtx;
use xtrapulp_graph::{DistGraph, GlobalId, LocalId, UNASSIGNED};

use crate::exchange::{push_part_updates, refresh_ghost_parts, PartUpdate};
use crate::params::{InitStrategy, PartitionParams};

/// Produce the initial part assignment for this rank's owned + ghost vertices.
///
/// The returned vector has length `graph.n_total()` and every entry is a valid part id
/// (no `UNASSIGNED` values remain). Must be called collectively.
pub fn init_partition(ctx: &RankCtx, graph: &DistGraph, params: &PartitionParams) -> Vec<i32> {
    match params.init {
        InitStrategy::BfsGrow => bfs_grow_init(ctx, graph, params),
        InitStrategy::Random => random_init(ctx, graph, params),
        InitStrategy::VertexBlock => block_init(ctx, graph, params),
    }
}

/// Uniform random initial assignment (each owned vertex gets an independent random part).
fn random_init(ctx: &RankCtx, graph: &DistGraph, params: &PartitionParams) -> Vec<i32> {
    let p = params.num_parts;
    let mut rng = SmallRng::seed_from_u64(params.seed ^ (ctx.rank() as u64).wrapping_mul(0x9E37));
    let mut parts = vec![UNASSIGNED; graph.n_total()];
    for part in parts.iter_mut().take(graph.n_owned()) {
        *part = rng.gen_range(0..p) as i32;
    }
    refresh_ghost_parts(ctx, graph, &mut parts);
    parts
}

/// Contiguous block initial assignment by global vertex id.
fn block_init(_ctx: &RankCtx, graph: &DistGraph, params: &PartitionParams) -> Vec<i32> {
    let p = params.num_parts as u64;
    let n = graph.global_n().max(1);
    let part_of =
        |g: GlobalId| -> i32 { ((g as u128 * p as u128 / n as u128) as u64).min(p - 1) as i32 };
    let mut parts = vec![UNASSIGNED; graph.n_total()];
    for (v, part) in parts.iter_mut().enumerate() {
        *part = part_of(graph.global_id(v as LocalId));
    }
    parts
}

/// The paper's hybrid BFS-growing / label-propagation initialisation (Algorithm 2).
fn bfs_grow_init(ctx: &RankCtx, graph: &DistGraph, params: &PartitionParams) -> Vec<i32> {
    let p = params.num_parts;
    let n = graph.global_n();
    let rank = ctx.rank();

    // Rank 0 draws p unique random roots from the global vertex set and broadcasts them.
    // Roots are preferentially drawn from non-isolated vertices: a part seeded on a
    // zero-degree vertex could never grow, which wastes a part and burdens the balance
    // stage. (The paper selects uniformly; at its scales isolated vertices are a
    // vanishing fraction, at ours they are not.)
    let candidate_roots: Vec<GlobalId> = {
        // Every rank contributes its owned non-isolated vertices; small graphs make this
        // cheap, and it keeps root selection independent of the rank count.
        let mine: Vec<GlobalId> = (0..graph.n_owned())
            .filter(|&v| graph.degree_owned(v as LocalId) > 0)
            .map(|v| graph.global_id(v as LocalId))
            .collect();
        ctx.allgatherv(mine)
    };
    // Only rank 0 draws the roots, but the broadcast itself is reached by
    // every rank unconditionally (collective-symmetry: the rank-dependent
    // part is confined to computing the payload).
    let drawn: Option<Vec<GlobalId>> = if rank == 0 {
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let universe: Vec<GlobalId> = if candidate_roots.is_empty() {
            (0..n).collect()
        } else {
            let mut sorted = candidate_roots.clone();
            sorted.sort_unstable();
            sorted
        };
        Some(if p >= universe.len() {
            universe
        } else {
            let mut shuffled = universe;
            shuffled.shuffle(&mut rng);
            shuffled.truncate(p);
            shuffled
        })
    } else {
        None
    };
    let roots: Vec<GlobalId> = ctx.broadcast(0, drawn);

    let mut parts = vec![UNASSIGNED; graph.n_total()];
    let mut seed_updates: Vec<PartUpdate> = Vec::new();
    for (i, &root) in roots.iter().enumerate() {
        if let Some(lid) = graph.local_id(root) {
            let part = (i % p) as i32;
            if graph.is_owned(lid) {
                parts[lid as usize] = part;
                seed_updates.push((lid, part));
            }
        }
    }
    push_part_updates(ctx, graph, &seed_updates, &mut parts);

    let mut rng = SmallRng::seed_from_u64(
        params.seed ^ 0xDEAD_BEEF ^ (rank as u64).wrapping_mul(0x85EB_CA6B),
    );
    // Grow parts breadth-first until no rank makes progress. The number of rounds is
    // bounded by the graph diameter. Assignments made during a round become visible only
    // at the end of the round (level-synchronous growth): letting them cascade within the
    // sweep would allow a single part — typically the one containing a low-id hub — to
    // flood most of the graph in the very first round, producing the badly imbalanced
    // seeds the balance stage then struggles to repair.
    loop {
        let mut updates: Vec<PartUpdate> = Vec::new();
        let mut candidate_parts: Vec<i32> = Vec::new();
        for v in 0..graph.n_owned() {
            if parts[v] != UNASSIGNED {
                continue;
            }
            candidate_parts.clear();
            for &u in graph.neighbors(v as LocalId) {
                let pu = parts[u as usize];
                if pu != UNASSIGNED {
                    candidate_parts.push(pu);
                }
            }
            if let Some(&w) = candidate_parts.choose(&mut rng) {
                updates.push((v as LocalId, w));
            }
        }
        // Apply this round's assignments now that the scan is complete.
        for &(v, w) in &updates {
            parts[v as usize] = w;
        }
        let local_updates = updates.len() as u64;
        push_part_updates(ctx, graph, &updates, &mut parts);
        let global_updates = ctx.allreduce_scalar_sum_u64(local_updates);
        if global_updates == 0 {
            break;
        }
    }

    // Any vertex still unassigned (isolated vertices, or components containing no root)
    // gets a uniform random part.
    let mut leftover_updates: Vec<PartUpdate> = Vec::new();
    for (v, part) in parts.iter_mut().enumerate().take(graph.n_owned()) {
        if *part == UNASSIGNED {
            let w = rng.gen_range(0..p) as i32;
            *part = w;
            leftover_updates.push((v as LocalId, w));
        }
    }
    push_part_updates(ctx, graph, &leftover_updates, &mut parts);
    // Ghosts of vertices that were never pushed (e.g. assigned before their neighbourhood
    // was built) are refreshed wholesale to be safe.
    refresh_ghost_parts(ctx, graph, &mut parts);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::is_valid_partition;
    use xtrapulp_comm::Runtime;
    use xtrapulp_graph::Distribution;

    fn grid_edges(w: u64, h: u64) -> Vec<(GlobalId, GlobalId)> {
        let mut e = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let id = y * w + x;
                if x + 1 < w {
                    e.push((id, id + 1));
                }
                if y + 1 < h {
                    e.push((id, id + w));
                }
            }
        }
        e
    }

    fn check_strategy(strategy: InitStrategy, nranks: usize) {
        let n = 64u64;
        let edges = grid_edges(8, 8);
        let out = Runtime::run(nranks, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, n, &edges);
            let params = PartitionParams {
                num_parts: 4,
                init: strategy,
                ..Default::default()
            };
            let parts = init_partition(ctx, &g, &params);
            assert_eq!(parts.len(), g.n_total());
            assert!(
                is_valid_partition(&parts, 4),
                "{strategy:?} left invalid labels"
            );
            // Ghost labels must agree with the owners' labels.
            let owned = parts[..g.n_owned()].to_vec();
            let ghosts = g.ghost_values_i32(ctx, &owned);
            for (slot, &expect) in ghosts.iter().enumerate() {
                assert_eq!(parts[g.n_owned() + slot], expect, "ghost out of sync");
            }
            // Return global (id, part) pairs to check global coverage.
            (0..g.n_owned())
                .map(|v| (g.global_id(v as LocalId), parts[v]))
                .collect::<Vec<_>>()
        });
        let mut global_parts = vec![-1i32; n as usize];
        for rank_pairs in out {
            for (g, p) in rank_pairs {
                global_parts[g as usize] = p;
            }
        }
        assert!(is_valid_partition(&global_parts, 4));
        // Every part should be non-empty for this size.
        for part in 0..4 {
            assert!(
                global_parts.contains(&part),
                "{strategy:?}: part {part} is empty"
            );
        }
    }

    #[test]
    fn bfs_grow_initialisation_is_valid() {
        check_strategy(InitStrategy::BfsGrow, 1);
        check_strategy(InitStrategy::BfsGrow, 3);
    }

    #[test]
    fn random_initialisation_is_valid() {
        check_strategy(InitStrategy::Random, 2);
    }

    #[test]
    fn block_initialisation_is_valid_and_contiguous() {
        check_strategy(InitStrategy::VertexBlock, 2);
        // Block init on a path graph should produce contiguous ranges.
        let edges: Vec<_> = (0..15u64).map(|i| (i, i + 1)).collect();
        let out = Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 16, &edges);
            let params = PartitionParams {
                num_parts: 4,
                init: InitStrategy::VertexBlock,
                ..Default::default()
            };
            let parts = init_partition(ctx, &g, &params);
            (0..g.n_owned())
                .map(|v| (g.global_id(v as LocalId), parts[v]))
                .collect::<Vec<_>>()
        });
        let mut global = vec![0i32; 16];
        for pairs in out {
            for (g, p) in pairs {
                global[g as usize] = p;
            }
        }
        assert_eq!(global, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
    }

    #[test]
    fn bfs_grow_assigns_disconnected_components() {
        // Two disconnected cliques and an isolated vertex: growth from roots cannot reach
        // everything, so the random fallback must kick in.
        let edges = vec![(0u64, 1u64), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4)];
        Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 8, &edges);
            let params = PartitionParams {
                num_parts: 3,
                seed: 5,
                ..Default::default()
            };
            let parts = init_partition(ctx, &g, &params);
            assert!(is_valid_partition(&parts[..g.n_owned()], 3));
        });
    }

    #[test]
    fn more_parts_than_vertices_is_handled() {
        let edges = vec![(0u64, 1u64), (1, 2)];
        Runtime::run(1, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 3, &edges);
            let params = PartitionParams {
                num_parts: 8,
                ..Default::default()
            };
            let parts = init_partition(ctx, &g, &params);
            assert!(is_valid_partition(&parts, 8));
        });
    }

    #[test]
    fn initialisation_is_deterministic_for_fixed_seed() {
        let edges = grid_edges(6, 6);
        let run = || {
            Runtime::run(2, |ctx| {
                let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 36, &edges);
                let params = PartitionParams {
                    num_parts: 4,
                    seed: 99,
                    ..Default::default()
                };
                init_partition(ctx, &g, &params)
            })
        };
        assert_eq!(run(), run());
    }
}
