//! The shared-memory PuLP baseline (Slota, Madduri, Rajamanickam, IEEE BigData 2014).
//!
//! PuLP is the prior system XtraPuLP extends: a single-node, multi-constraint,
//! multi-objective partitioner built from weighted label propagation. The paper's
//! Cluster-1 comparisons (Table II, Figs. 3–4 and 6) all report PuLP numbers, so the
//! reproduction ships a faithful shared-memory implementation: the same three stages as
//! XtraPuLP, but with part sizes updated synchronously after every move (there is no
//! distributed staleness, hence no dynamic multiplier).
//!
//! All four stages run on the shared sweep engine in [`crate::sweep`]: refinement
//! sweeps are frontier-driven (only vertices whose neighbourhood changed since the last
//! sweep are rescored) and the per-sweep proposal phase is thread-parallel with
//! deterministic two-phase chunk application, so results are bit-identical for every
//! thread count. [`PartitionParams::sweep_mode`] selects the legacy full-sweep
//! behaviour for baseline measurements.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use xtrapulp_comm::PhaseTimer;
use xtrapulp_graph::{Csr, GlobalId, UNASSIGNED};

use crate::error::PartitionError;
use crate::params::{InitStrategy, PartitionParams};
use crate::partitioner::{
    greedy_seed_unassigned, validate_warm_start, Partitioner, WarmStartPartitioner,
};
use crate::sweep::{
    refine_budget, RefineConvergence, ScoreScratch, StageKind, SweepMode, SweepStage, SweepStats,
    SweepWorkspace, BALANCE_CHUNK, NO_MOVE, SWEEP_CHUNK,
};

/// Slack applied to the balance targets when deciding whether a warm start needs the
/// balance stages at all: within this factor, the seed counts as balanced (see
/// `pulp_run` and the distributed equivalent in `partitioner.rs`).
pub(crate) const WARM_BALANCE_SLACK: f64 = 1.02;

/// The shared-memory PuLP partitioner.
#[derive(Debug, Clone, Copy, Default)]
pub struct PulpPartitioner;

impl Partitioner for PulpPartitioner {
    fn name(&self) -> &'static str {
        "PuLP"
    }

    fn try_partition(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> Result<Vec<i32>, PartitionError> {
        try_pulp_partition(csr, params)
    }
}

impl WarmStartPartitioner for PulpPartitioner {
    fn try_partition_from(
        &self,
        csr: &Csr,
        params: &PartitionParams,
        initial: &[i32],
    ) -> Result<Vec<i32>, PartitionError> {
        try_pulp_partition_from(csr, params, initial)
    }
}

/// Run the PuLP-MM algorithm on an in-memory graph, rejecting malformed parameters with
/// a typed error.
pub fn try_pulp_partition(csr: &Csr, params: &PartitionParams) -> Result<Vec<i32>, PartitionError> {
    try_pulp_partition_with_stats(csr, params).map(|(parts, _)| parts)
}

/// Run the PuLP-MM algorithm on an in-memory graph.
///
/// # Panics
///
/// Panics on invalid [`PartitionParams`]; request-path callers should prefer
/// [`try_pulp_partition`].
pub fn pulp_partition(csr: &Csr, params: &PartitionParams) -> Vec<i32> {
    match try_pulp_partition(csr, params) {
        Ok(parts) => parts,
        Err(e) => panic!("pulp_partition: {e}"),
    }
}

/// Run the PuLP-MM algorithm warm-started from a previous part vector, e.g. the result
/// of the last epoch on a graph that has since mutated.
///
/// `initial[v]` is the seed part of vertex `v`, or [`UNASSIGNED`] (`-1`) for vertices
/// that have no prior assignment (newly added ones); those are assigned greedily to the
/// majority part among their already-assigned neighbours (least-loaded part as the tie
/// break and fallback). When the seed still satisfies both balance constraints, only
/// refinement runs — frontier-seeded from the unassigned vertices plus their one-hop
/// neighbourhoods and stopping as soon as the frontier empties; otherwise the full cold
/// stage schedule runs (still skipping initialisation).
pub fn try_pulp_partition_from(
    csr: &Csr,
    params: &PartitionParams,
    initial: &[i32],
) -> Result<Vec<i32>, PartitionError> {
    try_pulp_partition_from_with_stats(csr, params, initial, None).map(|(parts, _)| parts)
}

/// [`try_pulp_partition_from`] variant that also reports the number of
/// label-propagation sweeps executed, for warm-vs-cold accounting.
pub fn try_pulp_partition_from_with_sweeps(
    csr: &Csr,
    params: &PartitionParams,
    initial: &[i32],
) -> Result<(Vec<i32>, u64), PartitionError> {
    try_pulp_partition_from_with_stats(csr, params, initial, None)
        .map(|(parts, stats)| (parts, stats.sweeps))
}

/// [`try_pulp_partition`] variant that also reports the number of label-propagation
/// sweeps executed.
pub fn try_pulp_partition_with_sweeps(
    csr: &Csr,
    params: &PartitionParams,
) -> Result<(Vec<i32>, u64), PartitionError> {
    try_pulp_partition_with_stats(csr, params).map(|(parts, stats)| (parts, stats.sweeps))
}

/// Full-accounting cold run: the part vector plus the engine's [`SweepStats`]
/// (sweeps, vertices scored, moves).
pub fn try_pulp_partition_with_stats(
    csr: &Csr,
    params: &PartitionParams,
) -> Result<(Vec<i32>, SweepStats), PartitionError> {
    try_pulp_partition_with_stats_timed(csr, params).map(|(parts, stats, _)| (parts, stats))
}

/// [`try_pulp_partition_with_stats`] variant that also reports the per-stage sweep
/// wall-clock as a [`PhaseTimer`] with `sweep_refine`/`sweep_balance`/`sweep_churn`
/// phases — the serial counterpart of the phases distributed runs put in
/// `PartitionResult::timings`.
pub fn try_pulp_partition_with_stats_timed(
    csr: &Csr,
    params: &PartitionParams,
) -> Result<(Vec<i32>, SweepStats, PhaseTimer), PartitionError> {
    params.validate()?;
    Ok(pulp_run(csr, params, None))
}

/// Full-accounting warm run. `touched`, when given, lists the vertices the mutation
/// delta touched (endpoints of inserted/deleted edges, added vertices); the refinement
/// frontier is seeded from them plus their one-hop neighbourhoods, so an epoch with a
/// small delta scores only the delta region instead of the whole graph. Without it the
/// frontier is seeded conservatively from every vertex.
pub fn try_pulp_partition_from_with_stats(
    csr: &Csr,
    params: &PartitionParams,
    initial: &[i32],
    touched: Option<&[GlobalId]>,
) -> Result<(Vec<i32>, SweepStats), PartitionError> {
    try_pulp_partition_from_with_stats_timed(csr, params, initial, touched)
        .map(|(parts, stats, _)| (parts, stats))
}

/// [`try_pulp_partition_from_with_stats`] variant that also reports the per-stage
/// sweep wall-clock (see [`try_pulp_partition_with_stats_timed`]).
pub fn try_pulp_partition_from_with_stats_timed(
    csr: &Csr,
    params: &PartitionParams,
    initial: &[i32],
    touched: Option<&[GlobalId]>,
) -> Result<(Vec<i32>, SweepStats, PhaseTimer), PartitionError> {
    params.validate()?;
    validate_warm_start(csr.num_vertices(), params.num_parts, initial)?;
    Ok(pulp_run(csr, params, Some((initial, touched))))
}

/// Shared cold/warm driver; returns the part vector and the sweep statistics
/// (refinement sweeps stop early on convergence, so these are measurements, not a
/// schedule). `initial`, when given, must already be validated by
/// [`validate_warm_start`].
fn pulp_run(
    csr: &Csr,
    params: &PartitionParams,
    warm: Option<(&[i32], Option<&[GlobalId]>)>,
) -> (Vec<i32>, SweepStats, PhaseTimer) {
    let n = csr.num_vertices();
    if n == 0 {
        return (Vec::new(), SweepStats::default(), PhaseTimer::new());
    }
    let p = params.num_parts;
    if p == 1 {
        return (vec![0; n], SweepStats::default(), PhaseTimer::new());
    }
    let frontier = params.sweep_mode == SweepMode::Frontier;
    let mut ws = SweepWorkspace::new(params.sweep_threads);
    ws.begin_run(n, p);

    // Warm runs come in two regimes. When the seeded partition already satisfies both
    // balance constraints (the common case after a small delta), the balance passes are
    // skipped entirely: they move vertices aggressively by design (refinement is what
    // cleans up after them), so running them on an already-balanced seed would churn
    // labels — and migrate vertices — for nothing; only refinement runs, seeded from
    // the delta-touched neighbourhood and stopping on an empty frontier. When a delta
    // *did* push a part meaningfully past its target, the warm run falls back to the
    // full cold stage schedule (balance needs several balance/refine rounds to
    // converge; a single round overshoots), still skipping initialisation. The check
    // carries a small slack because a converged run routinely lands within rounding of
    // the fractional target (e.g. 221 vertices against a target of 220.0), which is
    // noise, not imbalance.
    let (mut parts, outer, balance) = match warm {
        None => (init(csr, params), params.outer_iters, true),
        Some((initial, touched)) => {
            let mut parts = initial.to_vec();
            let unassigned: Vec<GlobalId> = (0..n as u64)
                .filter(|&v| parts[v as usize] == UNASSIGNED)
                .collect();
            greedy_seed_unassigned(csr, &mut parts, p);
            let imb_v = params.target_max_vertices(n as u64) * WARM_BALANCE_SLACK;
            let imb_e = params.target_max_arcs(csr.num_arcs()) * WARM_BALANCE_SLACK;
            fill_part_vertex_counts(&parts, &mut ws.counters.size_v);
            let over_v = ws.counters.size_v.iter().any(|&s| s as f64 > imb_v);
            fill_part_arc_counts(csr, &parts, &mut ws.counters.size_e);
            let needs_balance = over_v || ws.counters.size_e.iter().any(|&s| s as f64 > imb_e);
            if frontier && !needs_balance {
                // Refine-only warm run: seed the frontier from the touched region (the
                // delta's endpoints and every vertex that arrived unassigned) plus its
                // one-hop neighbourhood. Without any touched information the seed is
                // conservative: everything.
                if touched.is_none() && unassigned.is_empty() {
                    ws.engine.frontier.seed_all(n);
                } else {
                    let mut seed_one = |g: GlobalId| {
                        ws.engine.frontier.mark(g as u32);
                        for &u in csr.neighbors(g) {
                            ws.engine.frontier.mark(u as u32);
                        }
                    };
                    for &g in touched.unwrap_or(&[]) {
                        if g < n as u64 {
                            seed_one(g);
                        }
                    }
                    for &g in &unassigned {
                        seed_one(g);
                    }
                }
            }
            let outer = if needs_balance {
                params.outer_iters
            } else {
                params.warm_outer_iters
            };
            (parts, outer, needs_balance)
        }
    };
    if frontier && (balance || warm.is_none()) {
        // Cold runs (and warm runs that fell back to the cold schedule) start with
        // every vertex active: initialisation / the overshooting delta changed
        // everything worth rescoring.
        ws.engine.frontier.seed_all(n);
    }

    if balance {
        // The cold schedule: alternating balance (full sweeps) and refinement
        // (frontier sweeps with a verifying full polish) rounds per stage, exactly as
        // in the papers.
        for _ in 0..outer {
            vertex_balance(csr, &mut parts, params, &mut ws);
            vertex_refine(csr, &mut parts, params, &mut ws, RefineConvergence::Polish);
        }
        if params.edge_balance_stage {
            for _ in 0..outer {
                edge_balance(csr, &mut parts, params, &mut ws);
                edge_refine(csr, &mut parts, params, &mut ws, RefineConvergence::Polish);
            }
        }
    } else if outer > 0 {
        // Refine-only warm run. Frontier mode stops on convergence (empty frontier)
        // instead of a fixed round count, and never widens beyond the delta
        // neighbourhood (the seed is the previous epoch's already-polished partition);
        // full mode keeps the legacy fixed schedule.
        if frontier {
            // Extra convergence rounds only for delta-scoped warm runs; a blind warm
            // start (no touched set) keeps the legacy round count.
            let max_rounds = match warm {
                Some((_, Some(_))) => outer.max(params.outer_iters),
                _ => outer,
            };
            // Each round runs one refinement stage: with the edge stage enabled that
            // is `edge_refine`, whose admissibility (vertex, edge and cut caps) is a
            // superset of the vertex stage's and whose score rule is identical —
            // running `vertex_refine` first would consume the frontier to convergence
            // and leave the edge-capped pass nothing to check.
            for _ in 0..max_rounds {
                if ws.engine.frontier.active_len() == 0 {
                    break;
                }
                if params.edge_balance_stage {
                    edge_refine(
                        csr,
                        &mut parts,
                        params,
                        &mut ws,
                        RefineConvergence::FrontierOnly,
                    );
                } else {
                    vertex_refine(
                        csr,
                        &mut parts,
                        params,
                        &mut ws,
                        RefineConvergence::FrontierOnly,
                    );
                }
            }
        } else {
            for _ in 0..outer {
                vertex_refine(
                    csr,
                    &mut parts,
                    params,
                    &mut ws,
                    RefineConvergence::FrontierOnly,
                );
            }
            if params.edge_balance_stage {
                for _ in 0..outer {
                    edge_refine(
                        csr,
                        &mut parts,
                        params,
                        &mut ws,
                        RefineConvergence::FrontierOnly,
                    );
                }
            }
        }
    }
    let sweep_timings = ws.engine.stage_timings();
    (parts, ws.engine.stats, sweep_timings)
}

fn init(csr: &Csr, params: &PartitionParams) -> Vec<i32> {
    let n = csr.num_vertices() as u64;
    let p = params.num_parts;
    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0x50_4C_50);
    match params.init {
        InitStrategy::Random => (0..n).map(|_| rng.gen_range(0..p) as i32).collect(),
        InitStrategy::VertexBlock => (0..n)
            .map(|v| ((v as u128 * p as u128 / n.max(1) as u128) as u64).min(p as u64 - 1) as i32)
            .collect(),
        InitStrategy::BfsGrow => {
            let mut parts = vec![UNASSIGNED; n as usize];
            // Select p unique roots.
            let mut roots: Vec<GlobalId> = if (p as u64) >= n {
                (0..n).collect()
            } else {
                let mut all: Vec<GlobalId> = (0..n).collect();
                all.shuffle(&mut rng);
                all.truncate(p);
                all
            };
            roots.sort_unstable();
            for (i, &r) in roots.iter().enumerate() {
                parts[r as usize] = (i % p) as i32;
            }
            // Grow parts outward, adopting a random neighbouring part.
            let mut frontier: Vec<GlobalId> = roots;
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for &v in &frontier {
                    let pv = parts[v as usize];
                    for &u in csr.neighbors(v) {
                        if parts[u as usize] == UNASSIGNED {
                            parts[u as usize] = pv;
                            next.push(u);
                        }
                    }
                }
                next.shuffle(&mut rng);
                frontier = next;
            }
            // Random fallback for untouched vertices.
            for part in parts.iter_mut() {
                if *part == UNASSIGNED {
                    *part = rng.gen_range(0..p) as i32;
                }
            }
            parts
        }
    }
}

/// Fill `counts` (one slot per part) with part sizes in vertices.
fn fill_part_vertex_counts(parts: &[i32], counts: &mut [i64]) {
    counts.iter_mut().for_each(|c| *c = 0);
    for &x in parts {
        counts[x as usize] += 1;
    }
}

/// Fill `counts` with part sizes in arcs (vertex degree sums).
fn fill_part_arc_counts(csr: &Csr, parts: &[i32], counts: &mut [i64]) {
    counts.iter_mut().for_each(|c| *c = 0);
    for v in 0..csr.num_vertices() as u64 {
        counts[parts[v as usize] as usize] += csr.degree(v) as i64;
    }
}

/// Fill `counts` with per-part cut arc counts.
fn fill_part_cut_counts(csr: &Csr, parts: &[i32], counts: &mut [i64]) {
    counts.iter_mut().for_each(|c| *c = 0);
    for v in 0..csr.num_vertices() as u64 {
        let pv = parts[v as usize];
        for &u in csr.neighbors(v) {
            if parts[u as usize] != pv {
                counts[pv as usize] += 1;
            }
        }
    }
}

/// Enqueue-neighbours closure over a serial CSR for the sweep engine's frontier.
fn csr_neighbors(csr: &Csr) -> impl Fn(u32, &mut dyn FnMut(u32)) + '_ {
    move |v, mark| {
        for &u in csr.neighbors(v as u64) {
            mark(u as u32);
        }
    }
}

/// Count `v`'s neighbours in its own part `x` and in `target` under the current labels
/// — the cheap recheck the apply phase runs instead of a full rescoring.
#[inline]
fn recount_two(csr: &Csr, v: u32, parts: &[i32], x: usize, target: usize) -> (f64, f64) {
    let mut s_x = 0.0f64;
    let mut s_t = 0.0f64;
    for &u in csr.neighbors(v as u64) {
        let pu = parts[u as usize] as usize;
        if pu == x {
            s_x += 1.0;
        } else if pu == target {
            s_t += 1.0;
        }
    }
    (s_x, s_t)
}

/// The vertex balancing stage: weighted label propagation towards underweight parts.
struct SerialVertexBalance<'a> {
    csr: &'a Csr,
    size_v: &'a mut [i64],
    imb_v: f64,
    max_v: f64,
}

impl SerialVertexBalance<'_> {
    #[inline]
    fn weight(&self, i: usize) -> f64 {
        (self.imb_v / (self.size_v[i] as f64).max(1.0) - 1.0).max(0.0)
    }
}

impl SweepStage for SerialVertexBalance<'_> {
    fn propose(&self, v: u32, parts: &[i32], scratch: &mut ScoreScratch) -> i32 {
        let x = parts[v as usize] as usize;
        scratch.clear();
        for &u in self.csr.neighbors(v as u64) {
            scratch.add(parts[u as usize] as usize, self.csr.degree(u) as f64);
        }
        let mut best = x;
        let mut best_score = 0.0f64;
        for &i in scratch.touched() {
            if (self.size_v[i] as f64) + 1.0 > self.max_v {
                continue;
            }
            let score = scratch.get(i) * self.weight(i);
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        if best != x && best_score > 0.0 {
            best as i32
        } else {
            NO_MOVE
        }
    }

    fn apply(&mut self, v: u32, target: usize, parts: &[i32]) -> bool {
        let x = parts[v as usize] as usize;
        // Recheck against the live counters: the target must still be admissible and
        // still attractive (underweight), and v must still have a neighbour there.
        if (self.size_v[target] as f64) + 1.0 > self.max_v || self.weight(target) <= 0.0 {
            return false;
        }
        let (_, s_t) = recount_two(self.csr, v, parts, x, target);
        if s_t <= 0.0 {
            return false;
        }
        self.size_v[x] -= 1;
        self.size_v[target] += 1;
        true
    }
}

fn vertex_balance(csr: &Csr, parts: &mut [i32], params: &PartitionParams, ws: &mut SweepWorkspace) {
    let n = csr.num_vertices();
    let imb_v = params.target_max_vertices(n as u64);
    let frontier = params.sweep_mode == SweepMode::Frontier;
    let SweepWorkspace {
        engine, counters, ..
    } = ws;
    fill_part_vertex_counts(parts, &mut counters.size_v);
    // The stage exists to meet the vertex-balance constraint; once it holds, its label
    // churn towards momentarily-underweight parts is pure perturbation. Perturbation is
    // only *useful* when refinement has converged (empty frontier) — it is what lets
    // the next refinement round escape the local optimum — so: balanced + refinement
    // still active → skip the pass entirely; balanced + refinement converged → one
    // churn sweep; unbalanced → the full schedule. Gated on frontier mode so `Full`
    // stays a faithful legacy baseline.
    let balanced = counters.size_v.iter().all(|&s| (s as f64) <= imb_v);
    let sweep_cap = if frontier && balanced {
        if engine.frontier.active_len() > 0 {
            0
        } else {
            1
        }
    } else {
        params.balance_iters
    };
    // A balance pass run while the constraint already holds is pure perturbation;
    // book its sweeps as churn so reports can attribute the work.
    engine.set_stage(if balanced {
        StageKind::Churn
    } else {
        StageKind::Balance
    });
    for _ in 0..sweep_cap {
        let max_v = counters
            .size_v
            .iter()
            .map(|&s| s as f64)
            .fold(imb_v, f64::max);
        let mut stage = SerialVertexBalance {
            csr,
            size_v: &mut counters.size_v,
            imb_v,
            max_v,
        };
        let moves = engine.sweep(
            n,
            parts,
            false,
            BALANCE_CHUNK,
            &mut stage,
            csr_neighbors(csr),
            |_, _| {},
        );
        // A move-free balance sweep leaves sizes (hence weights and admissibility)
        // untouched, so every remaining sweep of this pass would be identical: skip
        // them. Gated on frontier mode so `Full` stays a faithful legacy baseline.
        if frontier && moves == 0 {
            break;
        }
    }
}

/// The vertex refinement stage: constrained label propagation minimising the cut.
struct SerialVertexRefine<'a> {
    csr: &'a Csr,
    size_v: &'a mut [i64],
    max_v: f64,
}

impl SweepStage for SerialVertexRefine<'_> {
    fn propose(&self, v: u32, parts: &[i32], scratch: &mut ScoreScratch) -> i32 {
        let x = parts[v as usize] as usize;
        scratch.clear();
        for &u in self.csr.neighbors(v as u64) {
            scratch.add(parts[u as usize] as usize, 1.0);
        }
        let mut best = x;
        let mut best_score = scratch.get(x);
        for &i in scratch.touched() {
            if i == x || (self.size_v[i] as f64) + 1.0 > self.max_v {
                continue;
            }
            if scratch.get(i) > best_score {
                best_score = scratch.get(i);
                best = i;
            }
        }
        if best != x {
            best as i32
        } else {
            NO_MOVE
        }
    }

    fn apply(&mut self, v: u32, target: usize, parts: &[i32]) -> bool {
        let x = parts[v as usize] as usize;
        if (self.size_v[target] as f64) + 1.0 > self.max_v {
            return false;
        }
        // The move must still strictly reduce the cut under the live labels (earlier
        // applications in this chunk may have changed the neighbourhood).
        let (s_x, s_t) = recount_two(self.csr, v, parts, x, target);
        if s_t <= s_x {
            return false;
        }
        self.size_v[x] -= 1;
        self.size_v[target] += 1;
        true
    }
}

fn vertex_refine(
    csr: &Csr,
    parts: &mut [i32],
    params: &PartitionParams,
    ws: &mut SweepWorkspace,
    convergence: RefineConvergence,
) {
    let n = csr.num_vertices();
    let imb_v = params.target_max_vertices(n as u64);
    let frontier_mode = params.sweep_mode == SweepMode::Frontier;
    let SweepWorkspace {
        engine, counters, ..
    } = ws;
    // A converged frontier-only pass does no work at all — skip the O(n) counter
    // rebuild too.
    if frontier_mode
        && convergence == RefineConvergence::FrontierOnly
        && engine.frontier.active_len() == 0
    {
        return;
    }
    fill_part_vertex_counts(parts, &mut counters.size_v);
    engine.set_stage(StageKind::Refine);
    // A pass inheriting a large frontier (the previous round did not converge — heavy
    // churn classes) drops it and falls straight to the polish full sweep, which
    // restores the legacy schedule's per-round global coverage.
    if frontier_mode
        && convergence == RefineConvergence::Polish
        && engine.frontier.active_len() > n / 8
    {
        engine.frontier.clear();
    }
    let budget = refine_budget(params.refine_iters, params.sweep_mode);
    let mut used = 0u64;
    loop {
        if used >= budget {
            break;
        }
        // Polish on an empty frontier: a full sweep verifies the fixed point (part
        // sizes change as vertices move, so a vertex whose neighbourhood never changed
        // can still become movable; the frontier alone cannot see that). A move-free
        // polish ends the pass.
        let use_frontier = frontier_mode && engine.frontier.active_len() > 0;
        if frontier_mode && !use_frontier && convergence == RefineConvergence::FrontierOnly {
            break;
        }
        let max_v = counters
            .size_v
            .iter()
            .map(|&s| s as f64)
            .fold(imb_v, f64::max);
        let mut stage = SerialVertexRefine {
            csr,
            size_v: &mut counters.size_v,
            max_v,
        };
        let moves = engine.sweep(
            n,
            parts,
            use_frontier,
            SWEEP_CHUNK,
            &mut stage,
            csr_neighbors(csr),
            |_, _| {},
        );
        used += 1;
        if moves == 0 && (!use_frontier || convergence == RefineConvergence::FrontierOnly) {
            break;
        }
    }
}

/// The edge balancing stage: weighted label propagation driven by per-part edge and cut
/// loads.
struct SerialEdgeBalance<'a> {
    csr: &'a Csr,
    size_v: &'a mut [i64],
    size_e: &'a mut [i64],
    size_c: &'a mut [i64],
    imb_e: f64,
    max_v: f64,
    max_e: f64,
    max_c: f64,
    r_e: f64,
    r_c: f64,
}

impl SerialEdgeBalance<'_> {
    #[inline]
    fn weight_e(&self, i: usize) -> f64 {
        (self.imb_e / (self.size_e[i] as f64).max(1.0) - 1.0).max(0.0)
    }

    #[inline]
    fn weight_c(&self, i: usize) -> f64 {
        (self.max_c / (self.size_c[i] as f64).max(1.0) - 1.0).max(0.0)
    }
}

impl SweepStage for SerialEdgeBalance<'_> {
    fn propose(&self, v: u32, parts: &[i32], scratch: &mut ScoreScratch) -> i32 {
        let x = parts[v as usize] as usize;
        let deg = self.csr.degree(v as u64) as f64;
        scratch.clear();
        for &u in self.csr.neighbors(v as u64) {
            scratch.add(parts[u as usize] as usize, 1.0);
        }
        let mut best = x;
        let mut best_score = 0.0f64;
        for &i in scratch.touched() {
            if i == x
                || (self.size_v[i] as f64) + 1.0 > self.max_v
                || (self.size_e[i] as f64) + deg > self.max_e
            {
                continue;
            }
            let score =
                scratch.get(i) * (self.r_e * self.weight_e(i) + self.r_c * self.weight_c(i));
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        if best != x && best_score > 0.0 {
            best as i32
        } else {
            NO_MOVE
        }
    }

    fn apply(&mut self, v: u32, target: usize, parts: &[i32]) -> bool {
        let x = parts[v as usize] as usize;
        let deg = self.csr.degree(v as u64) as f64;
        if (self.size_v[target] as f64) + 1.0 > self.max_v
            || (self.size_e[target] as f64) + deg > self.max_e
            || self.r_e * self.weight_e(target) + self.r_c * self.weight_c(target) <= 0.0
        {
            return false;
        }
        let (s_x, s_t) = recount_two(self.csr, v, parts, x, target);
        if s_t <= 0.0 {
            return false;
        }
        let cut_from_x = deg as i64 - s_x as i64;
        let cut_from_t = deg as i64 - s_t as i64;
        self.size_v[x] -= 1;
        self.size_v[target] += 1;
        self.size_e[x] -= deg as i64;
        self.size_e[target] += deg as i64;
        self.size_c[x] = (self.size_c[x] - cut_from_x).max(0);
        self.size_c[target] += cut_from_t;
        true
    }
}

fn edge_balance(csr: &Csr, parts: &mut [i32], params: &PartitionParams, ws: &mut SweepWorkspace) {
    let n = csr.num_vertices();
    let imb_v = params.target_max_vertices(n as u64);
    let imb_e = params.target_max_arcs(csr.num_arcs());
    let frontier = params.sweep_mode == SweepMode::Frontier;
    let SweepWorkspace {
        engine,
        counters,
        edge_balance_last_max,
        edge_balance_stalled,
    } = ws;
    fill_part_vertex_counts(parts, &mut counters.size_v);
    fill_part_arc_counts(csr, parts, &mut counters.size_e);
    fill_part_cut_counts(csr, parts, &mut counters.size_c);
    let mut r_e = 1.0f64;
    let mut r_c = 1.0f64;
    // Same perturbation policy as the vertex stage, against the edge target — skip the
    // pass while refinement is still active, one churn sweep at a refinement fixed
    // point, the full schedule while the edge constraint is unmet — plus stall
    // detection: when the target is unreachable (hub-dominated skew), stop paying for
    // balance churn that is not improving the maximum arc load.
    let cur_max_e = counters
        .size_e
        .iter()
        .map(|&s| s as f64)
        .fold(0.0, f64::max);
    let edge_balanced = counters.size_e.iter().all(|&s| (s as f64) <= imb_e);
    if frontier && !edge_balanced {
        if let Some(prev) = *edge_balance_last_max {
            if cur_max_e >= prev * 0.99 {
                *edge_balance_stalled = true;
            }
        }
        *edge_balance_last_max = Some(cur_max_e);
    }
    let sweep_cap = if frontier && *edge_balance_stalled {
        // Target out of reach: one churn sweep per pass keeps feeding refinement.
        1
    } else if frontier && edge_balanced {
        if engine.frontier.active_len() > 0 {
            0
        } else {
            1
        }
    } else {
        params.balance_iters
    };
    // Balanced (or stalled-at-unreachable) passes only perturb; book them as churn.
    engine.set_stage(if edge_balanced || *edge_balance_stalled {
        StageKind::Churn
    } else {
        StageKind::Balance
    });
    for _ in 0..sweep_cap {
        let max_v = counters
            .size_v
            .iter()
            .map(|&s| s as f64)
            .fold(imb_v, f64::max);
        let max_e = counters
            .size_e
            .iter()
            .map(|&s| s as f64)
            .fold(imb_e, f64::max);
        let max_c = counters
            .size_c
            .iter()
            .map(|&s| s as f64)
            .fold(1.0, f64::max);
        if counters.size_e.iter().all(|&s| (s as f64) <= imb_e) {
            r_c += 1.0;
        } else {
            r_e += 1.0;
        }
        let mut stage = SerialEdgeBalance {
            csr,
            size_v: &mut counters.size_v,
            size_e: &mut counters.size_e,
            size_c: &mut counters.size_c,
            imb_e,
            max_v,
            max_e,
            max_c,
            r_e,
            r_c,
        };
        let moves = engine.sweep(
            n,
            parts,
            false,
            BALANCE_CHUNK,
            &mut stage,
            csr_neighbors(csr),
            |_, _| {},
        );
        // Unlike the vertex stage, the cut-balance weight drifts with `max_c`, so only
        // a move-free sweep is provably stable; skip the rest then.
        if frontier && moves == 0 {
            break;
        }
    }
}

/// The edge-stage refinement: constrained label propagation that reduces the cut while
/// never increasing the maximum vertex, edge or cut load of any part.
struct SerialEdgeRefine<'a> {
    csr: &'a Csr,
    size_v: &'a mut [i64],
    size_e: &'a mut [i64],
    size_c: &'a mut [i64],
    max_v: f64,
    max_e: f64,
    max_c: f64,
}

impl SweepStage for SerialEdgeRefine<'_> {
    fn propose(&self, v: u32, parts: &[i32], scratch: &mut ScoreScratch) -> i32 {
        let x = parts[v as usize] as usize;
        let deg = self.csr.degree(v as u64) as f64;
        scratch.clear();
        for &u in self.csr.neighbors(v as u64) {
            scratch.add(parts[u as usize] as usize, 1.0);
        }
        let mut best = x;
        let mut best_score = scratch.get(x);
        for &i in scratch.touched() {
            if i == x
                || (self.size_v[i] as f64) + 1.0 > self.max_v
                || (self.size_e[i] as f64) + deg > self.max_e
                || (self.size_c[i] as f64) + (deg - scratch.get(i)) > self.max_c
            {
                continue;
            }
            if scratch.get(i) > best_score {
                best_score = scratch.get(i);
                best = i;
            }
        }
        if best != x {
            best as i32
        } else {
            NO_MOVE
        }
    }

    fn apply(&mut self, v: u32, target: usize, parts: &[i32]) -> bool {
        let x = parts[v as usize] as usize;
        let deg = self.csr.degree(v as u64) as f64;
        let (s_x, s_t) = recount_two(self.csr, v, parts, x, target);
        if s_t <= s_x
            || (self.size_v[target] as f64) + 1.0 > self.max_v
            || (self.size_e[target] as f64) + deg > self.max_e
            || (self.size_c[target] as f64) + (deg - s_t) > self.max_c
        {
            return false;
        }
        let cut_from_x = deg as i64 - s_x as i64;
        let cut_from_t = deg as i64 - s_t as i64;
        self.size_v[x] -= 1;
        self.size_v[target] += 1;
        self.size_e[x] -= deg as i64;
        self.size_e[target] += deg as i64;
        self.size_c[x] = (self.size_c[x] - cut_from_x).max(0);
        self.size_c[target] += cut_from_t;
        true
    }
}

fn edge_refine(
    csr: &Csr,
    parts: &mut [i32],
    params: &PartitionParams,
    ws: &mut SweepWorkspace,
    convergence: RefineConvergence,
) {
    let n = csr.num_vertices();
    let imb_v = params.target_max_vertices(n as u64);
    let imb_e = params.target_max_arcs(csr.num_arcs());
    let frontier_mode = params.sweep_mode == SweepMode::Frontier;
    let SweepWorkspace {
        engine, counters, ..
    } = ws;
    // A converged frontier-only pass does no work at all — skip the O(n + m) counter
    // rebuilds too.
    if frontier_mode
        && convergence == RefineConvergence::FrontierOnly
        && engine.frontier.active_len() == 0
    {
        return;
    }
    fill_part_vertex_counts(parts, &mut counters.size_v);
    fill_part_arc_counts(csr, parts, &mut counters.size_e);
    fill_part_cut_counts(csr, parts, &mut counters.size_c);
    engine.set_stage(StageKind::Refine);
    // Large inherited frontier: drop it and fall to the polish full sweep, as in
    // `vertex_refine`.
    if frontier_mode
        && convergence == RefineConvergence::Polish
        && engine.frontier.active_len() > n / 8
    {
        engine.frontier.clear();
    }
    let budget = refine_budget(params.refine_iters, params.sweep_mode);
    let mut used = 0u64;
    loop {
        if used >= budget {
            break;
        }
        // Polish on an empty frontier: a full sweep verifies the fixed point (part
        // sizes change as vertices move, so a vertex whose neighbourhood never changed
        // can still become movable; the frontier alone cannot see that). A move-free
        // polish ends the pass.
        let use_frontier = frontier_mode && engine.frontier.active_len() > 0;
        if frontier_mode && !use_frontier && convergence == RefineConvergence::FrontierOnly {
            break;
        }
        let max_v = counters
            .size_v
            .iter()
            .map(|&s| s as f64)
            .fold(imb_v, f64::max);
        let max_e = counters
            .size_e
            .iter()
            .map(|&s| s as f64)
            .fold(imb_e, f64::max);
        let max_c = counters
            .size_c
            .iter()
            .map(|&s| s as f64)
            .fold(1.0, f64::max);
        let mut stage = SerialEdgeRefine {
            csr,
            size_v: &mut counters.size_v,
            size_e: &mut counters.size_e,
            size_c: &mut counters.size_c,
            max_v,
            max_e,
            max_c,
        };
        let moves = engine.sweep(
            n,
            parts,
            use_frontier,
            SWEEP_CHUNK,
            &mut stage,
            csr_neighbors(csr),
            |_, _| {},
        );
        used += 1;
        if moves == 0 && (!use_frontier || convergence == RefineConvergence::FrontierOnly) {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{is_valid_partition, PartitionQuality};
    use crate::partitioner::RandomPartitioner;
    use xtrapulp_graph::csr_from_edges;

    fn grid_csr(w: u64, h: u64) -> Csr {
        let mut e = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let id = y * w + x;
                if x + 1 < w {
                    e.push((id, id + 1));
                }
                if y + 1 < h {
                    e.push((id, id + w));
                }
            }
        }
        csr_from_edges(w * h, &e)
    }

    #[test]
    fn pulp_produces_balanced_low_cut_partitions_on_a_grid() {
        let csr = grid_csr(20, 20);
        let params = PartitionParams {
            num_parts: 4,
            seed: 5,
            ..Default::default()
        };
        let (parts, q) = PulpPartitioner.partition_with_quality(&csr, &params);
        assert!(is_valid_partition(&parts, 4));
        assert!(
            q.vertex_imbalance <= 1.25,
            "vertex imbalance {}",
            q.vertex_imbalance
        );
        assert!(
            q.edge_cut_ratio < 0.4,
            "edge cut ratio {}",
            q.edge_cut_ratio
        );
    }

    #[test]
    fn pulp_beats_random_on_cut() {
        let csr = grid_csr(16, 16);
        let params = PartitionParams {
            num_parts: 8,
            seed: 5,
            ..Default::default()
        };
        let (_, q_pulp) = PulpPartitioner.partition_with_quality(&csr, &params);
        let (_, q_rand) = RandomPartitioner.partition_with_quality(&csr, &params);
        assert!(q_pulp.edge_cut < q_rand.edge_cut / 2);
    }

    #[test]
    fn single_part_and_empty_graph_edge_cases() {
        let csr = grid_csr(4, 4);
        let parts = pulp_partition(&csr, &PartitionParams::with_parts(1));
        assert!(parts.iter().all(|&p| p == 0));
        let empty = csr_from_edges(0, &[]);
        assert!(pulp_partition(&empty, &PartitionParams::with_parts(4)).is_empty());
    }

    #[test]
    fn all_init_strategies_produce_valid_partitions() {
        let csr = grid_csr(10, 10);
        for init in [
            InitStrategy::BfsGrow,
            InitStrategy::Random,
            InitStrategy::VertexBlock,
        ] {
            let params = PartitionParams {
                num_parts: 5,
                init,
                seed: 9,
                ..Default::default()
            };
            let parts = pulp_partition(&csr, &params);
            assert!(is_valid_partition(&parts, 5), "{init:?}");
            let q = PartitionQuality::evaluate(&csr, &parts, 5);
            assert!(q.vertex_imbalance < 1.4, "{init:?}: {}", q.vertex_imbalance);
        }
    }

    #[test]
    fn pulp_is_deterministic() {
        let csr = grid_csr(12, 12);
        let params = PartitionParams {
            num_parts: 4,
            seed: 123,
            ..Default::default()
        };
        assert_eq!(pulp_partition(&csr, &params), pulp_partition(&csr, &params));
    }

    #[test]
    fn pulp_is_identical_across_thread_counts() {
        let csr = grid_csr(20, 20);
        let mut results = Vec::new();
        for threads in [1usize, 2, 8] {
            let params = PartitionParams {
                num_parts: 4,
                seed: 5,
                sweep_threads: threads,
                ..Default::default()
            };
            results.push(pulp_partition(&csr, &params));
        }
        assert_eq!(results[0], results[1], "1 vs 2 threads");
        assert_eq!(results[0], results[2], "1 vs 8 threads");
    }

    #[test]
    fn frontier_and_full_sweeps_agree_on_quality() {
        let csr = grid_csr(24, 24);
        for seed in [5u64, 17] {
            let frontier = PartitionParams {
                num_parts: 4,
                seed,
                sweep_mode: SweepMode::Frontier,
                ..Default::default()
            };
            let full = PartitionParams {
                sweep_mode: SweepMode::Full,
                ..frontier
            };
            let (pf, sf) = try_pulp_partition_with_stats(&csr, &frontier).unwrap();
            let (pb, sb) = try_pulp_partition_with_stats(&csr, &full).unwrap();
            let qf = PartitionQuality::evaluate(&csr, &pf, 4);
            let qb = PartitionQuality::evaluate(&csr, &pb, 4);
            assert!(is_valid_partition(&pf, 4));
            // One-sided: the frontier engine may converge further within the sweep
            // budget (better cut), but must never be more than 1% worse.
            assert!(
                qf.edge_cut as f64 <= qb.edge_cut as f64 * 1.01 + 1.0,
                "seed {seed}: frontier cut {} vs full cut {}",
                qf.edge_cut,
                qb.edge_cut
            );
            // "No worse" in the constraint sense: the frontier result must stay within
            // the configured imbalance target (plus rounding) or beat the baseline.
            let target = (1.0 + frontier.vertex_imbalance) + 0.01;
            assert!(
                qf.vertex_imbalance <= qb.vertex_imbalance.max(target),
                "seed {seed}: frontier imbalance {} vs full {} (target {target})",
                qf.vertex_imbalance,
                qb.vertex_imbalance
            );
            assert!(
                sf.vertices_scored < sb.vertices_scored,
                "seed {seed}: frontier scored {} should be below full {}",
                sf.vertices_scored,
                sb.vertices_scored
            );
        }
    }

    #[test]
    fn warm_start_from_own_result_preserves_quality_with_fewer_sweeps() {
        let csr = grid_csr(20, 20);
        let params = PartitionParams {
            num_parts: 4,
            seed: 5,
            ..Default::default()
        };
        let (cold, cold_sweeps) = try_pulp_partition_with_sweeps(&csr, &params).unwrap();
        let cold_q = PartitionQuality::evaluate(&csr, &cold, 4);
        let (warm, warm_sweeps) =
            try_pulp_partition_from_with_sweeps(&csr, &params, &cold).unwrap();
        let warm_q = PartitionQuality::evaluate(&csr, &warm, 4);
        assert!(is_valid_partition(&warm, 4));
        assert!(
            warm_sweeps < cold_sweeps,
            "warm {warm_sweeps} sweeps should be fewer than cold {cold_sweeps}"
        );
        // Refining an already-good partition must not blow up the cut or the balance.
        assert!(
            warm_q.edge_cut as f64 <= cold_q.edge_cut as f64 * 1.05,
            "warm cut {} vs cold cut {}",
            warm_q.edge_cut,
            cold_q.edge_cut
        );
        assert!(warm_q.vertex_imbalance <= 1.25);
    }

    #[test]
    fn touched_warm_start_scores_only_the_delta_region() {
        let csr = grid_csr(30, 30);
        let params = PartitionParams {
            num_parts: 4,
            seed: 5,
            ..Default::default()
        };
        let (cold, _) = try_pulp_partition_with_stats(&csr, &params).unwrap();
        // Warm start with an explicit (tiny) touched set versus no information at all.
        let (_, blind) = try_pulp_partition_from_with_stats(&csr, &params, &cold, None).unwrap();
        let touched: Vec<u64> = vec![0, 1, 30];
        let (warm, scoped) =
            try_pulp_partition_from_with_stats(&csr, &params, &cold, Some(&touched)).unwrap();
        assert!(is_valid_partition(&warm, 4));
        assert!(
            scoped.vertices_scored * 5 <= blind.vertices_scored.max(1),
            "touched-seeded warm run scored {} vertices, blind warm run {}",
            scoped.vertices_scored,
            blind.vertices_scored
        );
    }

    #[test]
    fn converged_warm_start_exits_on_an_empty_frontier() {
        // Warm-starting from an already-converged partition with an empty touched set
        // must do (almost) no work: the frontier never fills, so no sweep runs.
        let csr = grid_csr(20, 20);
        let params = PartitionParams {
            num_parts: 4,
            seed: 5,
            ..Default::default()
        };
        let (cold, _) = try_pulp_partition_with_stats(&csr, &params).unwrap();
        let (warm, stats) =
            try_pulp_partition_from_with_stats(&csr, &params, &cold, Some(&[])).unwrap();
        assert_eq!(warm, cold, "an empty delta must not move anything");
        assert_eq!(stats.sweeps, 0, "no touched vertices, no sweeps");
        assert_eq!(stats.vertices_scored, 0);
    }

    #[test]
    fn warm_start_assigns_unassigned_vertices_greedily() {
        let csr = grid_csr(8, 8);
        let params = PartitionParams {
            num_parts: 2,
            warm_outer_iters: 0, // seed-only: isolates the greedy assignment
            seed: 1,
            ..Default::default()
        };
        // Left half part 0, right half part 1, two unassigned interior vertices.
        let mut initial: Vec<i32> = (0..64).map(|v| if v % 8 < 4 { 0 } else { 1 }).collect();
        initial[9] = UNASSIGNED; // column 1: all neighbours in part 0
        initial[14] = UNASSIGNED; // column 6: all neighbours in part 1
        let parts = try_pulp_partition_from(&csr, &params, &initial).unwrap();
        assert_eq!(parts[9], 0, "majority of assigned neighbours is part 0");
        assert_eq!(parts[14], 1, "majority of assigned neighbours is part 1");
        // Everything already assigned stays put under a seed-only schedule.
        for v in 0..64 {
            if initial[v] != UNASSIGNED {
                assert_eq!(parts[v], initial[v]);
            }
        }
    }

    #[test]
    fn warm_start_rejects_bad_vectors() {
        let csr = grid_csr(4, 4);
        let params = PartitionParams::with_parts(2);
        assert!(matches!(
            try_pulp_partition_from(&csr, &params, &[0; 3]),
            Err(crate::error::PartitionError::InvalidWarmStart { .. })
        ));
        let mut bad = vec![0i32; 16];
        bad[7] = 5; // out of range for 2 parts
        assert!(matches!(
            try_pulp_partition_from(&csr, &params, &bad),
            Err(crate::error::PartitionError::InvalidWarmStart { .. })
        ));
    }

    #[test]
    fn warm_start_is_deterministic() {
        let csr = grid_csr(12, 12);
        let params = PartitionParams {
            num_parts: 4,
            seed: 11,
            ..Default::default()
        };
        let mut initial = pulp_partition(&csr, &params);
        initial[5] = UNASSIGNED;
        initial[77] = UNASSIGNED;
        let a = try_pulp_partition_from(&csr, &params, &initial).unwrap();
        let b = try_pulp_partition_from(&csr, &params, &initial).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_objective_mode_skips_edge_stage() {
        let csr = grid_csr(12, 12);
        let params = PartitionParams {
            num_parts: 4,
            edge_balance_stage: false,
            seed: 3,
            ..Default::default()
        };
        let (parts, q) = PulpPartitioner.partition_with_quality(&csr, &params);
        assert!(is_valid_partition(&parts, 4));
        assert!(q.vertex_imbalance <= 1.25);
    }
}
