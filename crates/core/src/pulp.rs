//! The shared-memory PuLP baseline (Slota, Madduri, Rajamanickam, IEEE BigData 2014).
//!
//! PuLP is the prior system XtraPuLP extends: a single-node, multi-constraint,
//! multi-objective partitioner built from weighted label propagation. The paper's
//! Cluster-1 comparisons (Table II, Figs. 3–4 and 6) all report PuLP numbers, so the
//! reproduction ships a faithful shared-memory implementation: the same three stages as
//! XtraPuLP, but with part sizes updated synchronously after every move (there is no
//! distributed staleness, hence no dynamic multiplier).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use xtrapulp_graph::{Csr, GlobalId, UNASSIGNED};

use crate::error::PartitionError;
use crate::params::{InitStrategy, PartitionParams};
use crate::partitioner::{
    greedy_seed_unassigned, validate_warm_start, Partitioner, WarmStartPartitioner,
};

/// Slack applied to the balance targets when deciding whether a warm start needs the
/// balance stages at all: within this factor, the seed counts as balanced (see
/// `pulp_run` and the distributed equivalent in `partitioner.rs`).
pub(crate) const WARM_BALANCE_SLACK: f64 = 1.02;

/// The shared-memory PuLP partitioner.
#[derive(Debug, Clone, Copy, Default)]
pub struct PulpPartitioner;

impl Partitioner for PulpPartitioner {
    fn name(&self) -> &'static str {
        "PuLP"
    }

    fn try_partition(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> Result<Vec<i32>, PartitionError> {
        try_pulp_partition(csr, params)
    }
}

impl WarmStartPartitioner for PulpPartitioner {
    fn try_partition_from(
        &self,
        csr: &Csr,
        params: &PartitionParams,
        initial: &[i32],
    ) -> Result<Vec<i32>, PartitionError> {
        try_pulp_partition_from(csr, params, initial)
    }
}

/// Run the PuLP-MM algorithm on an in-memory graph, rejecting malformed parameters with
/// a typed error.
pub fn try_pulp_partition(csr: &Csr, params: &PartitionParams) -> Result<Vec<i32>, PartitionError> {
    params.validate()?;
    Ok(pulp_partition_validated(csr, params))
}

/// Run the PuLP-MM algorithm on an in-memory graph.
///
/// # Panics
///
/// Panics on invalid [`PartitionParams`]; request-path callers should prefer
/// [`try_pulp_partition`].
pub fn pulp_partition(csr: &Csr, params: &PartitionParams) -> Vec<i32> {
    match try_pulp_partition(csr, params) {
        Ok(parts) => parts,
        Err(e) => panic!("pulp_partition: {e}"),
    }
}

/// Run the PuLP-MM algorithm warm-started from a previous part vector, e.g. the result
/// of the last epoch on a graph that has since mutated.
///
/// `initial[v]` is the seed part of vertex `v`, or [`UNASSIGNED`] (`-1`) for vertices
/// that have no prior assignment (newly added ones); those are assigned greedily to the
/// majority part among their already-assigned neighbours (least-loaded part as the tie
/// break and fallback). The balance/refine stages then run a short schedule of
/// [`PartitionParams::warm_outer_iters`] outer rounds instead of the from-scratch
/// `outer_iters`.
pub fn try_pulp_partition_from(
    csr: &Csr,
    params: &PartitionParams,
    initial: &[i32],
) -> Result<Vec<i32>, PartitionError> {
    try_pulp_partition_from_with_sweeps(csr, params, initial).map(|(parts, _)| parts)
}

/// [`try_pulp_partition_from`] variant that also reports the number of
/// label-propagation sweeps executed, for warm-vs-cold accounting.
pub fn try_pulp_partition_from_with_sweeps(
    csr: &Csr,
    params: &PartitionParams,
    initial: &[i32],
) -> Result<(Vec<i32>, u64), PartitionError> {
    params.validate()?;
    validate_warm_start(csr.num_vertices(), params.num_parts, initial)?;
    Ok(pulp_run(csr, params, Some(initial)))
}

/// [`try_pulp_partition`] variant that also reports the number of label-propagation
/// sweeps executed.
pub fn try_pulp_partition_with_sweeps(
    csr: &Csr,
    params: &PartitionParams,
) -> Result<(Vec<i32>, u64), PartitionError> {
    params.validate()?;
    Ok(pulp_run(csr, params, None))
}

/// The algorithm body; `params` must already be validated.
fn pulp_partition_validated(csr: &Csr, params: &PartitionParams) -> Vec<i32> {
    pulp_run(csr, params, None).0
}

/// Shared cold/warm driver; returns the part vector and the number of
/// label-propagation sweeps executed (refinement sweeps stop early on convergence, so
/// this is a measurement, not a schedule). `initial`, when given, must already be
/// validated by [`validate_warm_start`].
fn pulp_run(csr: &Csr, params: &PartitionParams, initial: Option<&[i32]>) -> (Vec<i32>, u64) {
    let n = csr.num_vertices() as u64;
    if n == 0 {
        return (Vec::new(), 0);
    }
    let p = params.num_parts;
    if p == 1 {
        return (vec![0; n as usize], 0);
    }

    // Warm runs come in two regimes. When the seeded partition already satisfies both
    // balance constraints (the common case after a small delta), the balance passes are
    // skipped entirely: they move vertices aggressively by design (refinement is what
    // cleans up after them), so running them on an already-balanced seed would churn
    // labels — and migrate vertices — for nothing; only `warm_outer_iters` rounds of
    // refinement run. When a delta *did* push a part meaningfully past its target, the
    // warm run falls back to the full cold stage schedule (balance needs several
    // balance/refine rounds to converge; a single round overshoots), still skipping
    // initialisation. The check carries a small slack because a converged run routinely
    // lands within rounding of the fractional target (e.g. 221 vertices against a
    // target of 220.0), which is noise, not imbalance.
    let (mut parts, outer, balance) = match initial {
        None => (init(csr, params), params.outer_iters, true),
        Some(initial) => {
            let mut parts = initial.to_vec();
            greedy_seed_unassigned(csr, &mut parts, p);
            let imb_v = params.target_max_vertices(n) * WARM_BALANCE_SLACK;
            let imb_e = params.target_max_arcs(csr.num_arcs()) * WARM_BALANCE_SLACK;
            let needs_balance = part_vertex_counts(&parts, p)
                .iter()
                .any(|&s| s as f64 > imb_v)
                || part_arc_counts(csr, &parts, p)
                    .iter()
                    .any(|&s| s as f64 > imb_e);
            let outer = if needs_balance {
                params.outer_iters
            } else {
                params.warm_outer_iters
            };
            (parts, outer, needs_balance)
        }
    };

    let mut sweeps = 0u64;
    // Stage 1: vertex balance + refinement.
    for _ in 0..outer {
        if balance {
            sweeps += vertex_balance(csr, &mut parts, params);
        }
        sweeps += vertex_refine(csr, &mut parts, params);
    }
    // Stage 2: edge balance + refinement.
    if params.edge_balance_stage {
        for _ in 0..outer {
            if balance {
                sweeps += edge_balance(csr, &mut parts, params);
            }
            sweeps += edge_refine(csr, &mut parts, params);
        }
    }
    (parts, sweeps)
}

fn init(csr: &Csr, params: &PartitionParams) -> Vec<i32> {
    let n = csr.num_vertices() as u64;
    let p = params.num_parts;
    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0x50_4C_50);
    match params.init {
        InitStrategy::Random => (0..n).map(|_| rng.gen_range(0..p) as i32).collect(),
        InitStrategy::VertexBlock => (0..n)
            .map(|v| ((v as u128 * p as u128 / n.max(1) as u128) as u64).min(p as u64 - 1) as i32)
            .collect(),
        InitStrategy::BfsGrow => {
            let mut parts = vec![UNASSIGNED; n as usize];
            // Select p unique roots.
            let mut roots: Vec<GlobalId> = if (p as u64) >= n {
                (0..n).collect()
            } else {
                let mut all: Vec<GlobalId> = (0..n).collect();
                all.shuffle(&mut rng);
                all.truncate(p);
                all
            };
            roots.sort_unstable();
            for (i, &r) in roots.iter().enumerate() {
                parts[r as usize] = (i % p) as i32;
            }
            // Grow parts outward, adopting a random neighbouring part.
            let mut frontier: Vec<GlobalId> = roots;
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for &v in &frontier {
                    let pv = parts[v as usize];
                    for &u in csr.neighbors(v) {
                        if parts[u as usize] == UNASSIGNED {
                            parts[u as usize] = pv;
                            next.push(u);
                        }
                    }
                }
                next.shuffle(&mut rng);
                frontier = next;
            }
            // Random fallback for untouched vertices.
            for part in parts.iter_mut() {
                if *part == UNASSIGNED {
                    *part = rng.gen_range(0..p) as i32;
                }
            }
            parts
        }
    }
}

fn part_vertex_counts(parts: &[i32], p: usize) -> Vec<i64> {
    let mut counts = vec![0i64; p];
    for &x in parts {
        counts[x as usize] += 1;
    }
    counts
}

fn part_arc_counts(csr: &Csr, parts: &[i32], p: usize) -> Vec<i64> {
    let mut counts = vec![0i64; p];
    for v in 0..csr.num_vertices() as u64 {
        counts[parts[v as usize] as usize] += csr.degree(v) as i64;
    }
    counts
}

fn part_cut_counts(csr: &Csr, parts: &[i32], p: usize) -> Vec<i64> {
    let mut counts = vec![0i64; p];
    for v in 0..csr.num_vertices() as u64 {
        let pv = parts[v as usize];
        for &u in csr.neighbors(v) {
            if parts[u as usize] != pv {
                counts[pv as usize] += 1;
            }
        }
    }
    counts
}

fn vertex_balance(csr: &Csr, parts: &mut [i32], params: &PartitionParams) -> u64 {
    let p = params.num_parts;
    let n = csr.num_vertices() as u64;
    let imb_v = params.target_max_vertices(n);
    let mut size_v = part_vertex_counts(parts, p);
    let mut scores = vec![0.0f64; p];
    let mut sweeps = 0u64;
    for _ in 0..params.balance_iters {
        sweeps += 1;
        let max_v = size_v.iter().map(|&s| s as f64).fold(imb_v, f64::max);
        for v in 0..n {
            let x = parts[v as usize] as usize;
            for s in scores.iter_mut() {
                *s = 0.0;
            }
            for &u in csr.neighbors(v) {
                scores[parts[u as usize] as usize] += csr.degree(u) as f64;
            }
            let mut best = x;
            let mut best_score = 0.0;
            for i in 0..p {
                if (size_v[i] as f64) + 1.0 > max_v {
                    continue;
                }
                let w = (imb_v / (size_v[i] as f64).max(1.0) - 1.0).max(0.0);
                let score = scores[i] * w;
                if score > best_score {
                    best_score = score;
                    best = i;
                }
            }
            if best != x && best_score > 0.0 {
                size_v[x] -= 1;
                size_v[best] += 1;
                parts[v as usize] = best as i32;
            }
        }
    }
    sweeps
}

fn vertex_refine(csr: &Csr, parts: &mut [i32], params: &PartitionParams) -> u64 {
    let p = params.num_parts;
    let n = csr.num_vertices() as u64;
    let imb_v = params.target_max_vertices(n);
    let mut size_v = part_vertex_counts(parts, p);
    let mut scores = vec![0.0f64; p];
    let mut sweeps = 0u64;
    for _ in 0..params.refine_iters {
        sweeps += 1;
        let max_v = size_v.iter().map(|&s| s as f64).fold(imb_v, f64::max);
        let mut moved = 0u64;
        for v in 0..n {
            let x = parts[v as usize] as usize;
            for s in scores.iter_mut() {
                *s = 0.0;
            }
            for &u in csr.neighbors(v) {
                scores[parts[u as usize] as usize] += 1.0;
            }
            let mut best = x;
            let mut best_score = scores[x];
            for i in 0..p {
                if i == x || (size_v[i] as f64) + 1.0 > max_v {
                    continue;
                }
                if scores[i] > best_score {
                    best_score = scores[i];
                    best = i;
                }
            }
            if best != x {
                size_v[x] -= 1;
                size_v[best] += 1;
                parts[v as usize] = best as i32;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
    sweeps
}

fn edge_balance(csr: &Csr, parts: &mut [i32], params: &PartitionParams) -> u64 {
    let p = params.num_parts;
    let n = csr.num_vertices() as u64;
    let imb_v = params.target_max_vertices(n);
    let imb_e = params.target_max_arcs(csr.num_arcs());
    let mut size_v = part_vertex_counts(parts, p);
    let mut size_e = part_arc_counts(csr, parts, p);
    let mut size_c = part_cut_counts(csr, parts, p);
    let mut scores = vec![0.0f64; p];
    let mut r_e = 1.0f64;
    let mut r_c = 1.0f64;
    let mut sweeps = 0u64;
    for _ in 0..params.balance_iters {
        sweeps += 1;
        let max_v = size_v.iter().map(|&s| s as f64).fold(imb_v, f64::max);
        let max_e = size_e.iter().map(|&s| s as f64).fold(imb_e, f64::max);
        let max_c = size_c.iter().map(|&s| s as f64).fold(1.0, f64::max);
        if size_e.iter().all(|&s| (s as f64) <= imb_e) {
            r_c += 1.0;
        } else {
            r_e += 1.0;
        }
        for v in 0..n {
            let x = parts[v as usize] as usize;
            let deg = csr.degree(v) as f64;
            for s in scores.iter_mut() {
                *s = 0.0;
            }
            for &u in csr.neighbors(v) {
                scores[parts[u as usize] as usize] += 1.0;
            }
            let mut best = x;
            let mut best_score = 0.0;
            for i in 0..p {
                if i == x || (size_v[i] as f64) + 1.0 > max_v || (size_e[i] as f64) + deg > max_e {
                    continue;
                }
                let w_e = (imb_e / (size_e[i] as f64).max(1.0) - 1.0).max(0.0);
                let w_c = (max_c / (size_c[i] as f64).max(1.0) - 1.0).max(0.0);
                let score = scores[i] * (r_e * w_e + r_c * w_c);
                if score > best_score {
                    best_score = score;
                    best = i;
                }
            }
            if best != x && best_score > 0.0 {
                let cut_from_x = deg as i64 - scores[x] as i64;
                let cut_from_best = deg as i64 - scores[best] as i64;
                size_v[x] -= 1;
                size_v[best] += 1;
                size_e[x] -= deg as i64;
                size_e[best] += deg as i64;
                size_c[x] = (size_c[x] - cut_from_x).max(0);
                size_c[best] += cut_from_best;
                parts[v as usize] = best as i32;
            }
        }
    }
    sweeps
}

fn edge_refine(csr: &Csr, parts: &mut [i32], params: &PartitionParams) -> u64 {
    let p = params.num_parts;
    let n = csr.num_vertices() as u64;
    let imb_v = params.target_max_vertices(n);
    let imb_e = params.target_max_arcs(csr.num_arcs());
    let mut size_v = part_vertex_counts(parts, p);
    let mut size_e = part_arc_counts(csr, parts, p);
    let mut size_c = part_cut_counts(csr, parts, p);
    let mut scores = vec![0.0f64; p];
    let mut sweeps = 0u64;
    for _ in 0..params.refine_iters {
        sweeps += 1;
        let max_v = size_v.iter().map(|&s| s as f64).fold(imb_v, f64::max);
        let max_e = size_e.iter().map(|&s| s as f64).fold(imb_e, f64::max);
        let max_c = size_c.iter().map(|&s| s as f64).fold(1.0, f64::max);
        let mut moved = 0u64;
        for v in 0..n {
            let x = parts[v as usize] as usize;
            let deg = csr.degree(v) as f64;
            for s in scores.iter_mut() {
                *s = 0.0;
            }
            for &u in csr.neighbors(v) {
                scores[parts[u as usize] as usize] += 1.0;
            }
            let mut best = x;
            let mut best_score = scores[x];
            for i in 0..p {
                if i == x
                    || (size_v[i] as f64) + 1.0 > max_v
                    || (size_e[i] as f64) + deg > max_e
                    || (size_c[i] as f64) + (deg - scores[i]) > max_c
                {
                    continue;
                }
                if scores[i] > best_score {
                    best_score = scores[i];
                    best = i;
                }
            }
            if best != x {
                let cut_from_x = deg as i64 - scores[x] as i64;
                let cut_from_best = deg as i64 - scores[best] as i64;
                size_v[x] -= 1;
                size_v[best] += 1;
                size_e[x] -= deg as i64;
                size_e[best] += deg as i64;
                size_c[x] = (size_c[x] - cut_from_x).max(0);
                size_c[best] += cut_from_best;
                parts[v as usize] = best as i32;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
    sweeps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{is_valid_partition, PartitionQuality};
    use crate::partitioner::RandomPartitioner;
    use xtrapulp_graph::csr_from_edges;

    fn grid_csr(w: u64, h: u64) -> Csr {
        let mut e = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let id = y * w + x;
                if x + 1 < w {
                    e.push((id, id + 1));
                }
                if y + 1 < h {
                    e.push((id, id + w));
                }
            }
        }
        csr_from_edges(w * h, &e)
    }

    #[test]
    fn pulp_produces_balanced_low_cut_partitions_on_a_grid() {
        let csr = grid_csr(20, 20);
        let params = PartitionParams {
            num_parts: 4,
            seed: 5,
            ..Default::default()
        };
        let (parts, q) = PulpPartitioner.partition_with_quality(&csr, &params);
        assert!(is_valid_partition(&parts, 4));
        assert!(
            q.vertex_imbalance <= 1.25,
            "vertex imbalance {}",
            q.vertex_imbalance
        );
        assert!(
            q.edge_cut_ratio < 0.4,
            "edge cut ratio {}",
            q.edge_cut_ratio
        );
    }

    #[test]
    fn pulp_beats_random_on_cut() {
        let csr = grid_csr(16, 16);
        let params = PartitionParams {
            num_parts: 8,
            seed: 5,
            ..Default::default()
        };
        let (_, q_pulp) = PulpPartitioner.partition_with_quality(&csr, &params);
        let (_, q_rand) = RandomPartitioner.partition_with_quality(&csr, &params);
        assert!(q_pulp.edge_cut < q_rand.edge_cut / 2);
    }

    #[test]
    fn single_part_and_empty_graph_edge_cases() {
        let csr = grid_csr(4, 4);
        let parts = pulp_partition(&csr, &PartitionParams::with_parts(1));
        assert!(parts.iter().all(|&p| p == 0));
        let empty = csr_from_edges(0, &[]);
        assert!(pulp_partition(&empty, &PartitionParams::with_parts(4)).is_empty());
    }

    #[test]
    fn all_init_strategies_produce_valid_partitions() {
        let csr = grid_csr(10, 10);
        for init in [
            InitStrategy::BfsGrow,
            InitStrategy::Random,
            InitStrategy::VertexBlock,
        ] {
            let params = PartitionParams {
                num_parts: 5,
                init,
                seed: 9,
                ..Default::default()
            };
            let parts = pulp_partition(&csr, &params);
            assert!(is_valid_partition(&parts, 5), "{init:?}");
            let q = PartitionQuality::evaluate(&csr, &parts, 5);
            assert!(q.vertex_imbalance < 1.4, "{init:?}: {}", q.vertex_imbalance);
        }
    }

    #[test]
    fn pulp_is_deterministic() {
        let csr = grid_csr(12, 12);
        let params = PartitionParams {
            num_parts: 4,
            seed: 123,
            ..Default::default()
        };
        assert_eq!(pulp_partition(&csr, &params), pulp_partition(&csr, &params));
    }

    #[test]
    fn warm_start_from_own_result_preserves_quality_with_fewer_sweeps() {
        let csr = grid_csr(20, 20);
        let params = PartitionParams {
            num_parts: 4,
            seed: 5,
            ..Default::default()
        };
        let (cold, cold_sweeps) = try_pulp_partition_with_sweeps(&csr, &params).unwrap();
        let cold_q = PartitionQuality::evaluate(&csr, &cold, 4);
        let (warm, warm_sweeps) =
            try_pulp_partition_from_with_sweeps(&csr, &params, &cold).unwrap();
        let warm_q = PartitionQuality::evaluate(&csr, &warm, 4);
        assert!(is_valid_partition(&warm, 4));
        assert!(
            warm_sweeps < cold_sweeps,
            "warm {warm_sweeps} sweeps should be fewer than cold {cold_sweeps}"
        );
        // Refining an already-good partition must not blow up the cut or the balance.
        assert!(
            warm_q.edge_cut as f64 <= cold_q.edge_cut as f64 * 1.05,
            "warm cut {} vs cold cut {}",
            warm_q.edge_cut,
            cold_q.edge_cut
        );
        assert!(warm_q.vertex_imbalance <= 1.25);
    }

    #[test]
    fn warm_start_assigns_unassigned_vertices_greedily() {
        let csr = grid_csr(8, 8);
        let params = PartitionParams {
            num_parts: 2,
            warm_outer_iters: 0, // seed-only: isolates the greedy assignment
            seed: 1,
            ..Default::default()
        };
        // Left half part 0, right half part 1, two unassigned interior vertices.
        let mut initial: Vec<i32> = (0..64).map(|v| if v % 8 < 4 { 0 } else { 1 }).collect();
        initial[9] = UNASSIGNED; // column 1: all neighbours in part 0
        initial[14] = UNASSIGNED; // column 6: all neighbours in part 1
        let parts = try_pulp_partition_from(&csr, &params, &initial).unwrap();
        assert_eq!(parts[9], 0, "majority of assigned neighbours is part 0");
        assert_eq!(parts[14], 1, "majority of assigned neighbours is part 1");
        // Everything already assigned stays put under a seed-only schedule.
        for v in 0..64 {
            if initial[v] != UNASSIGNED {
                assert_eq!(parts[v], initial[v]);
            }
        }
    }

    #[test]
    fn warm_start_rejects_bad_vectors() {
        let csr = grid_csr(4, 4);
        let params = PartitionParams::with_parts(2);
        assert!(matches!(
            try_pulp_partition_from(&csr, &params, &[0; 3]),
            Err(crate::error::PartitionError::InvalidWarmStart { .. })
        ));
        let mut bad = vec![0i32; 16];
        bad[7] = 5; // out of range for 2 parts
        assert!(matches!(
            try_pulp_partition_from(&csr, &params, &bad),
            Err(crate::error::PartitionError::InvalidWarmStart { .. })
        ));
    }

    #[test]
    fn warm_start_is_deterministic() {
        let csr = grid_csr(12, 12);
        let params = PartitionParams {
            num_parts: 4,
            seed: 11,
            ..Default::default()
        };
        let mut initial = pulp_partition(&csr, &params);
        initial[5] = UNASSIGNED;
        initial[77] = UNASSIGNED;
        let a = try_pulp_partition_from(&csr, &params, &initial).unwrap();
        let b = try_pulp_partition_from(&csr, &params, &initial).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_objective_mode_skips_edge_stage() {
        let csr = grid_csr(12, 12);
        let params = PartitionParams {
            num_parts: 4,
            edge_balance_stage: false,
            seed: 3,
            ..Default::default()
        };
        let (parts, q) = PulpPartitioner.partition_with_quality(&csr, &params);
        assert!(is_valid_partition(&parts, 4));
        assert!(q.vertex_imbalance <= 1.25);
    }
}
