//! Baseline partitioning strategies: random, vertex-block and edge-block assignment.
//!
//! At the scale XtraPuLP targets, "the only competing methods are random and block
//! partitioning" (§V-B), and the Fig. 8 analytics study compares exactly these three
//! naive strategies against XtraPuLP. They are also the initial distributions the
//! partitioner itself starts from.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xtrapulp_graph::Csr;

/// Assign each vertex to a uniformly random part. This balances vertices in expectation
/// but cuts essentially every edge on small-world graphs (edge cut ratio ≈ (p-1)/p).
pub fn random_partition(num_vertices: u64, num_parts: usize, seed: u64) -> Vec<i32> {
    assert!(num_parts >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..num_vertices)
        .map(|_| rng.gen_range(0..num_parts) as i32)
        .collect()
}

/// Assign contiguous blocks of vertex ids to parts so that every part has (almost) the
/// same number of vertices ("VertexBlock" in Fig. 8).
pub fn vertex_block_partition(num_vertices: u64, num_parts: usize) -> Vec<i32> {
    assert!(num_parts >= 1);
    let p = num_parts as u64;
    let base = num_vertices / p;
    let extra = num_vertices % p;
    let mut parts = Vec::with_capacity(num_vertices as usize);
    for part in 0..p {
        let size = if part < extra { base + 1 } else { base };
        parts.extend(std::iter::repeat_n(part as i32, size as usize));
    }
    parts
}

/// Assign contiguous blocks of vertex ids to parts so that every part has approximately
/// the same number of *edges* (degree sum), the "EdgeBlock" strategy of Fig. 8. Vertex
/// counts per part may be wildly imbalanced on skewed graphs.
pub fn edge_block_partition(csr: &Csr, num_parts: usize) -> Vec<i32> {
    assert!(num_parts >= 1);
    let n = csr.num_vertices() as u64;
    let total_arcs = csr.num_arcs();
    let target = (total_arcs as f64 / num_parts as f64).max(1.0);
    let mut parts = vec![0i32; n as usize];
    let mut part = 0usize;
    let mut acc = 0u64;
    for v in 0..n {
        parts[v as usize] = part as i32;
        acc += csr.degree(v);
        if (acc as f64) >= target * (part + 1) as f64 && part + 1 < num_parts {
            part += 1;
        }
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{is_valid_partition, PartitionQuality};
    use xtrapulp_graph::csr_from_edges;

    fn star_plus_path() -> Csr {
        // Vertex 0 is a hub of degree 20; vertices 20..40 form a path.
        let mut edges: Vec<(u64, u64)> = (1..=20u64).map(|i| (0, i)).collect();
        edges.extend((20..39u64).map(|i| (i, i + 1)));
        csr_from_edges(40, &edges)
    }

    #[test]
    fn random_partition_is_valid_and_deterministic() {
        let a = random_partition(1000, 8, 7);
        let b = random_partition(1000, 8, 7);
        assert_eq!(a, b);
        assert!(is_valid_partition(&a, 8));
        // Every part should receive a decent share of vertices.
        for p in 0..8 {
            let count = a.iter().filter(|&&x| x == p).count();
            assert!(count > 50, "part {p} has only {count} vertices");
        }
    }

    #[test]
    fn vertex_block_partition_is_balanced_and_contiguous() {
        let parts = vertex_block_partition(10, 3);
        assert_eq!(parts, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
        assert!(is_valid_partition(&parts, 3));
        let parts = vertex_block_partition(9, 3);
        assert_eq!(parts.iter().filter(|&&p| p == 0).count(), 3);
    }

    #[test]
    fn vertex_block_handles_more_parts_than_vertices() {
        let parts = vertex_block_partition(3, 8);
        assert_eq!(parts.len(), 3);
        assert!(is_valid_partition(&parts, 8));
    }

    #[test]
    fn edge_block_balances_degree_sums() {
        let csr = star_plus_path();
        let parts = edge_block_partition(&csr, 2);
        assert!(is_valid_partition(&parts, 2));
        let q = PartitionQuality::evaluate(&csr, &parts, 2);
        // Degree sums should be much better balanced than vertex counts for this skewed
        // graph.
        assert!(
            q.edge_imbalance < 1.5,
            "edge imbalance {}",
            q.edge_imbalance
        );
        // The hub part holds far fewer vertices.
        let hub_part_size = parts.iter().filter(|&&p| p == parts[0]).count();
        assert!(hub_part_size < 30);
    }

    #[test]
    fn edge_block_on_uniform_path_is_nearly_vertex_block() {
        let edges: Vec<(u64, u64)> = (0..29u64).map(|i| (i, i + 1)).collect();
        let csr = csr_from_edges(30, &edges);
        let parts = edge_block_partition(&csr, 3);
        let counts: Vec<usize> = (0..3)
            .map(|p| parts.iter().filter(|&&x| x == p).count())
            .collect();
        assert!(counts.iter().all(|&c| (8..=12).contains(&c)), "{counts:?}");
    }

    #[test]
    fn random_partition_cuts_most_edges_of_a_clique() {
        let mut edges = Vec::new();
        for u in 0..20u64 {
            for v in (u + 1)..20 {
                edges.push((u, v));
            }
        }
        let csr = csr_from_edges(20, &edges);
        let parts = random_partition(20, 4, 3);
        let q = PartitionQuality::evaluate(&csr, &parts, 4);
        // Expected cut ratio ~ (p-1)/p = 0.75.
        assert!(q.edge_cut_ratio > 0.5);
    }
}
